"""Unit tests for the expression value objects and the tiny parser."""

import pytest

from repro.ir.expr import (
    BinExpr,
    Const,
    ExprError,
    UnaryExpr,
    Var,
    expr_atoms,
    expr_key,
    expr_vars,
    is_computation,
    parse_expr,
)


class TestAtoms:
    def test_const_str(self):
        assert str(Const(42)) == "42"

    def test_negative_const_str(self):
        assert str(Const(-7)) == "-7"

    def test_var_str(self):
        assert str(Var("alpha")) == "alpha"

    def test_empty_var_name_rejected(self):
        with pytest.raises(ExprError):
            Var("")

    def test_atoms_are_hashable_value_objects(self):
        assert Const(1) == Const(1)
        assert Var("a") == Var("a")
        assert len({Const(1), Const(1), Var("a"), Var("a")}) == 2

    def test_const_var_distinct(self):
        assert Const(1) != Var("1")


class TestBinExpr:
    def test_structural_equality(self):
        assert BinExpr("+", Var("a"), Var("b")) == BinExpr("+", Var("a"), Var("b"))

    def test_operand_order_matters(self):
        assert BinExpr("+", Var("a"), Var("b")) != BinExpr("+", Var("b"), Var("a"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExprError):
            BinExpr("**", Var("a"), Var("b"))

    def test_nested_expression_rejected(self):
        inner = BinExpr("+", Var("a"), Var("b"))
        with pytest.raises(ExprError):
            BinExpr("*", inner, Var("c"))

    def test_str_symbolic(self):
        assert str(BinExpr("*", Var("a"), Const(2))) == "a * 2"

    def test_str_function_form(self):
        assert str(BinExpr("min", Var("a"), Var("b"))) == "min(a, b)"


class TestUnaryExpr:
    def test_str_prefix(self):
        assert str(UnaryExpr("-", Var("x"))) == "-x"

    def test_str_function_form(self):
        assert str(UnaryExpr("abs", Var("x"))) == "abs(x)"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExprError):
            UnaryExpr("+", Var("x"))

    def test_non_atomic_operand_rejected(self):
        with pytest.raises(ExprError):
            UnaryExpr("-", BinExpr("+", Var("a"), Var("b")))


class TestInspection:
    def test_is_computation(self):
        assert is_computation(BinExpr("+", Var("a"), Var("b")))
        assert is_computation(UnaryExpr("-", Var("a")))
        assert not is_computation(Var("a"))
        assert not is_computation(Const(1))

    def test_expr_vars_order_and_multiplicity(self):
        assert expr_vars(BinExpr("+", Var("a"), Var("a"))) == ("a", "a")
        assert expr_vars(BinExpr("-", Var("b"), Var("a"))) == ("b", "a")

    def test_expr_vars_of_const(self):
        assert expr_vars(Const(3)) == ()

    def test_expr_vars_mixed(self):
        assert expr_vars(BinExpr("*", Const(2), Var("k"))) == ("k",)

    def test_expr_atoms(self):
        expr = BinExpr("+", Const(1), Var("v"))
        assert list(expr_atoms(expr)) == [Const(1), Var("v")]


class TestExprKey:
    def test_binary_key(self):
        assert expr_key(BinExpr("+", Var("a"), Var("b"))) == "a_plus_b"

    def test_const_key(self):
        assert expr_key(BinExpr("*", Var("a"), Const(-2))) == "a_times_cneg2"

    def test_unary_key(self):
        assert expr_key(UnaryExpr("!", Var("p"))) == "not_p"

    def test_keys_distinguish_operators(self):
        a, b = Var("a"), Var("b")
        keys = {expr_key(BinExpr(op, a, b)) for op in ("+", "-", "*", "/")}
        assert len(keys) == 4


class TestParseExpr:
    def test_parse_binary(self):
        assert parse_expr("a + b") == BinExpr("+", Var("a"), Var("b"))

    def test_parse_no_spaces(self):
        assert parse_expr("a*b") == BinExpr("*", Var("a"), Var("b"))

    def test_parse_comparison_two_chars(self):
        assert parse_expr("a <= b") == BinExpr("<=", Var("a"), Var("b"))

    def test_parse_var(self):
        assert parse_expr("  x ") == Var("x")

    def test_parse_const(self):
        assert parse_expr("42") == Const(42)

    def test_parse_negative_const(self):
        assert parse_expr("-5") == Const(-5)

    def test_parse_unary_negation(self):
        assert parse_expr("-x") == UnaryExpr("-", Var("x"))

    def test_parse_const_operand(self):
        assert parse_expr("n * 4") == BinExpr("*", Var("n"), Const(4))

    def test_parse_min(self):
        assert parse_expr("min(a, b)") == BinExpr("min", Var("a"), Var("b"))

    def test_parse_abs(self):
        assert parse_expr("abs(x)") == UnaryExpr("abs", Var("x"))

    def test_parse_binary_negative_right(self):
        assert parse_expr("a + -3") == BinExpr("+", Var("a"), Const(-3))

    def test_parse_garbage_rejected(self):
        with pytest.raises(ExprError):
            parse_expr("a + + b")

    def test_parse_empty_rejected(self):
        with pytest.raises(ExprError):
            parse_expr("   ")
