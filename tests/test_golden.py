"""Golden tests: exact-output stability of the user-facing renderings.

These pin the precise text of the pretty printer, the placement
descriptions, the DOT export and the optimised running example, so any
behavioural drift in the core shows up as a readable diff.
"""

from textwrap import dedent

from repro.bench.figures import diamond_example
from repro.core.pipeline import optimize
from repro.ir.dot import cfg_to_dot
from repro.ir.pretty import pretty_cfg


class TestGoldenDiamond:
    def test_pretty_print(self):
        expected = dedent(
            """\
            entry:
              goto cond
            exit:
              halt
            cond:
              p = a < b
              if p goto left else right
            left:
              x = a + b
              goto join
            right:
              goto join
            join:
              y = a + b
              goto exit"""
        )
        assert pretty_cfg(diamond_example()) == expected

    def test_lcm_plan_description(self):
        result = optimize(diamond_example(), "lcm")
        assert result.describe() == (
            "a + b: insert on edges [right->join]; replace in [join]"
        )

    def test_optimised_program_text(self):
        result = optimize(diamond_example(), "lcm")
        expected = dedent(
            """\
            entry:
              goto cond
            exit:
              halt
            cond:
              p = a < b
              if p goto left else right
            left:
              t1.a_plus_b = a + b
              x = t1.a_plus_b
              goto join
            right:
              goto ins_right_join
            join:
              y = t1.a_plus_b
              goto exit
            ins_right_join:
              t1.a_plus_b = a + b
              goto join"""
        )
        assert pretty_cfg(result.cfg) == expected

    def test_dot_output(self):
        dot = cfg_to_dot(diamond_example())
        assert dot.splitlines()[0] == "digraph cfg {"
        assert '  "cond" -> "left";' in dot
        # Node labels show the block name and instructions (terminators
        # are rendered as edges).
        assert '  "entry" [label="entry:\\l"];' in dot
        assert '"left" [label="left:\\lx = a + b\\l"];' in dot

    def test_bcm_plan_description(self):
        result = optimize(diamond_example(), "bcm")
        described = {p.describe() for p in result.placements if not p.is_identity}
        assert described == {
            "a + b: insert on edges [entry->cond]; replace in [join, left]",
            "a < b: insert on edges [entry->cond]; replace in [cond]",
        }
