"""Property-based tests (hypothesis) over random programs and vectors.

Strategies draw seeds for the mini-language program generator (which
only emits structurally valid, terminating programs) and raw bit
vectors; the properties are the library's load-bearing invariants.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.local import compute_local_properties
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.core.lcm import analyze_lcm
from repro.core.lifetime import measure_lifetimes
from repro.core.localcse import local_cse
from repro.core.optimality import (
    check_equivalence,
    compare_per_path,
    paths_agree,
)
from repro.core.pipeline import optimize
from repro.dataflow.bitvec import BitVector
from repro.dataflow.solver import solve
from repro.analysis.availability import availability_problem
from repro.analysis.anticipability import anticipability_problem
from repro.interp.machine import run
from repro.interp.random_inputs import random_envs

SMALL = GeneratorConfig(statements=8, max_depth=2)

quick = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


# ---------------------------------------------------------------------------
# Bit-vector algebra
# ---------------------------------------------------------------------------

@st.composite
def vec_pairs(draw):
    width = draw(st.integers(min_value=0, max_value=24))
    bits = st.integers(min_value=0, max_value=(1 << width) - 1 if width else 0)
    return (
        BitVector(width, draw(bits)),
        BitVector(width, draw(bits)),
    )


class TestBitVectorAlgebra:
    @quick
    @given(vec_pairs())
    def test_de_morgan(self, pair):
        a, b = pair
        assert ~(a | b) == (~a & ~b)
        assert ~(a & b) == (~a | ~b)

    @quick
    @given(vec_pairs())
    def test_difference_definition(self, pair):
        a, b = pair
        assert (a - b) == (a & ~b)

    @quick
    @given(vec_pairs())
    def test_union_commutes_and_absorbs(self, pair):
        a, b = pair
        assert (a | b) == (b | a)
        assert (a | b) & a == a & (a | b)
        assert a.issubset(a | b)
        assert (a & b).issubset(a)

    @quick
    @given(vec_pairs())
    def test_indices_roundtrip(self, pair):
        a, _ = pair
        assert BitVector.of(a.width, a.indices()) == a


# ---------------------------------------------------------------------------
# Dataflow engine invariants
# ---------------------------------------------------------------------------

class TestSolverProperties:
    @quick
    @given(seeds)
    def test_worklist_equals_round_robin(self, seed):
        cfg = random_cfg(seed, SMALL)
        local = compute_local_properties(cfg)
        for problem in (availability_problem(local), anticipability_problem(local)):
            a = solve(cfg, problem)
            b = solve(cfg, problem, strategy="worklist")
            assert a.inof == b.inof and a.outof == b.outof

    @quick
    @given(seeds)
    def test_fixpoint_is_stable(self, seed):
        cfg = random_cfg(seed, SMALL)
        local = compute_local_properties(cfg)
        problem = availability_problem(local)
        sol = solve(cfg, problem)
        # Re-applying every transfer/meet leaves the solution unchanged.
        for label in cfg.labels:
            if label != cfg.entry:
                met = None
                for p in cfg.preds(label):
                    met = sol.outof[p] if met is None else met & sol.outof[p]
                if met is not None:
                    assert met == sol.inof[label]
            assert problem.transfer(label, sol.inof[label]) == sol.outof[label]

    @quick
    @given(seeds)
    def test_availability_implies_anticipation_was_satisfied(self, seed):
        # AVIN ∧ ANTLOC at a block means the LCM DELETE bit may be set;
        # sanity: DELETE ⊆ ANTLOC always.
        cfg = random_cfg(seed, SMALL)
        analysis = analyze_lcm(cfg)
        for label in cfg.labels:
            assert analysis.delete[label].issubset(analysis.local.antloc[label])


# ---------------------------------------------------------------------------
# Transformation properties (the paper's guarantees)
# ---------------------------------------------------------------------------

class TestTransformationProperties:
    @quick
    @given(seeds)
    def test_lcm_preserves_semantics(self, seed):
        cfg = random_cfg(seed, SMALL)
        result = optimize(cfg, "lcm")
        assert check_equivalence(cfg, result.cfg, runs=10, seed=seed).equivalent

    @quick
    @given(seeds)
    def test_lcm_is_safe_per_path(self, seed):
        cfg = random_cfg(seed, SMALL)
        result = optimize(cfg, "lcm")
        assert compare_per_path(cfg, result.cfg, max_branches=6).safe

    @quick
    @given(seeds)
    def test_lcm_equals_bcm_per_path(self, seed):
        cfg = random_cfg(seed, SMALL)
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        assert paths_agree(lcm.cfg, bcm.cfg, max_branches=6)

    @quick
    @given(seeds)
    def test_node_and_edge_formulations_agree(self, seed):
        cfg = random_cfg(seed, SMALL)
        edge = optimize(cfg, "lcm")
        node = optimize(cfg, "krs-lcm")
        assert paths_agree(edge.cfg, node.cfg, max_branches=6)

    @quick
    @given(seeds)
    def test_lifetime_ordering(self, seed):
        cfg = random_cfg(seed, SMALL)
        spans = {}
        for strategy in ("krs-lcm", "krs-alcm", "krs-bcm"):
            result = optimize(cfg, strategy)
            spans[strategy] = measure_lifetimes(
                result.cfg, result.temps
            ).total_live_points
        assert spans["krs-lcm"] <= spans["krs-alcm"] <= spans["krs-bcm"]

    @quick
    @given(seeds)
    def test_optimization_is_idempotent_dynamically(self, seed):
        # Optimising an already-optimised program removes nothing more.
        cfg = random_cfg(seed, SMALL)
        once = optimize(cfg, "lcm")
        twice = optimize(once.cfg, "lcm")
        assert paths_agree(once.cfg, twice.cfg, max_branches=6)


# ---------------------------------------------------------------------------
# Front-end / LCSE properties
# ---------------------------------------------------------------------------

class TestNormalisationProperties:
    @quick
    @given(seeds)
    def test_local_cse_preserves_semantics(self, seed):
        cfg = random_cfg(seed, SMALL)
        after, _ = local_cse(cfg)
        assert check_equivalence(cfg, after, runs=10, seed=seed).equivalent

    @quick
    @given(seeds)
    def test_local_cse_idempotent(self, seed):
        cfg = random_cfg(seed, SMALL)
        once, _ = local_cse(cfg)
        twice, replaced = local_cse(once)
        assert replaced == 0
        assert str(once) == str(twice)

    @quick
    @given(seeds)
    def test_local_cse_never_increases_computations(self, seed):
        cfg = random_cfg(seed, SMALL)
        after, _ = local_cse(cfg)
        for env in random_envs(cfg, 5, seed=seed):
            before_run = run(cfg, env)
            after_run = run(after, env)
            assert after_run.total_evaluations <= before_run.total_evaluations
