"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import CliError, _parse_bindings, load_program, main

SOURCE = """
x = a + b;
if (p) { y = a + b; } else { y = 0; }
z = a + b;
"""


@pytest.fixture
def prog(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(SOURCE)
    return str(path)


def invoke(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompile:
    def test_text_output(self, prog):
        code, text = invoke("compile", prog)
        assert code == 0
        assert "x = a + b" in text
        assert "entry:" in text

    def test_json_output_roundtrips(self, prog, tmp_path):
        code, text = invoke("compile", prog, "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["format"] == "repro-cfg"
        # JSON dumps are accepted back as input files.
        json_path = tmp_path / "prog.json"
        json_path.write_text(text)
        code, text2 = invoke("compile", str(json_path))
        assert code == 0
        assert "x = a + b" in text2

    def test_dot_output(self, prog):
        code, text = invoke("compile", prog, "--emit", "dot")
        assert code == 0
        assert text.startswith("digraph")


class TestOpt:
    def test_lcm_plan_in_comments(self, prog):
        code, text = invoke("opt", prog)
        assert code == 0
        # a+b is fully redundant below its first occurrence here, so
        # the plan replaces without inserting.
        assert "; a + b: " in text
        assert "replace in" in text

    def test_strategy_choice(self, prog):
        code, text = invoke("opt", prog, "--strategy", "gcse")
        assert code == 0

    def test_pipeline_mode(self, prog):
        code, text = invoke("opt", prog, "--pipeline")
        assert code == 0
        assert "; pipeline:" in text

    def test_bad_strategy_rejected_by_argparse(self, prog):
        with pytest.raises(SystemExit):
            invoke("opt", prog, "--strategy", "bogus")


class TestRun:
    def test_run_prints_env(self, prog):
        code, text = invoke("run", prog, "-i", "a=2", "-i", "b=3", "-i", "p=1")
        assert code == 0
        assert "x = 5" in text
        assert "z = 5" in text
        assert "expression evaluations" in text

    def test_optimized_run_matches(self, prog):
        _, plain = invoke("run", prog, "-i", "a=2", "-i", "b=3", "-i", "p=1")
        _, optimised = invoke(
            "run", prog, "--optimized", "-i", "a=2", "-i", "b=3", "-i", "p=1"
        )
        def env_lines(text):
            return {
                line for line in text.splitlines()
                if line and not line.startswith(";") and "." not in line.split(" =")[0]
            }
        assert env_lines(plain) <= env_lines(optimised) | env_lines(plain)
        # All original variables agree.
        for line in env_lines(plain):
            assert line in optimised

    def test_optimized_evaluates_less(self, prog):
        def evals(text):
            for line in text.splitlines():
                if "expression evaluations" in line:
                    return int(line.split()[1])
            raise AssertionError("no evaluation count printed")

        _, plain = invoke("run", prog, "-i", "a=2", "-i", "b=3", "-i", "p=1")
        _, optimised = invoke(
            "run", prog, "--optimized", "-i", "a=2", "-i", "b=3", "-i", "p=1"
        )
        assert evals(optimised) < evals(plain)

    def test_bad_binding_reports_error(self, prog):
        code, _ = invoke("run", prog, "-i", "a")
        assert code == 2


class TestAudit:
    def test_audit_all(self, prog):
        code, text = invoke("audit", prog)
        assert code == 0
        assert "a + b:" in text
        assert "INSERT on edges" in text

    def test_audit_single_expr(self, prog):
        code, text = invoke("audit", prog, "--expr", "a + b")
        assert code == 0
        assert "DELETE in blocks" in text

    def test_audit_unknown_expr(self, prog):
        code, _ = invoke("audit", prog, "--expr", "q * q")
        assert code == 2


class TestReport:
    def test_report_table(self, prog):
        code, text = invoke("report", prog, "--runs", "3")
        assert code == 0
        assert "strategy comparison" in text
        for name in ("none", "gcse", "lcm"):
            assert name in text


class TestVerifyFlag:
    def test_opt_verify_ok(self, prog):
        code, text = invoke("opt", prog, "--verify")
        assert code == 0
        assert "; verdict   : OK" in text

    def test_opt_verify_pipeline(self, prog):
        code, text = invoke("opt", prog, "--pipeline", "--verify")
        assert code == 0
        assert "verdict   : OK" in text

    def test_opt_verify_licm_tolerated(self, prog):
        # licm is expected-unsafe; --verify must not fail it on safety.
        code, _ = invoke("opt", prog, "--strategy", "licm", "--verify")
        assert code == 0

    def test_size_governed_strategy_available(self, prog):
        code, _ = invoke("opt", prog, "--strategy", "lcm-size")
        assert code == 0


class TestJsonFlow:
    def test_opt_emit_json_then_run(self, prog, tmp_path):
        code, text = invoke("opt", prog, "--emit", "json")
        assert code == 0
        json_start = text.index("{")
        json_path = tmp_path / "opt.json"
        json_path.write_text(text[json_start:])
        code, out = invoke(
            "run", str(json_path), "-i", "a=2", "-i", "b=3", "-i", "p=1"
        )
        assert code == 0
        assert "x = 5" in out


class TestTraceFlag:
    def test_trace_writes_valid_json(self, prog, tmp_path):
        trace_path = tmp_path / "out.json"
        code, _ = invoke("--trace", str(trace_path), "opt", prog)
        assert code == 0
        data = json.loads(trace_path.read_text())
        assert data["format"] == "repro-trace"
        solves = [e for e in data["events"] if e["name"] == "dataflow.solve"]
        assert solves, "expected dataflow.solve events in the trace"
        for event in solves:
            assert event["duration_ms"] >= 0
            assert event["attrs"]["sweeps"] >= 1
            # Dense-backend solves do no counted BitVector operations;
            # reference-backend solves tally them.
            if event["attrs"]["backend"] == "dense":
                assert event["attrs"]["bitvec_ops"] == 0
            else:
                assert event["attrs"]["bitvec_ops"] > 0
        assert any(
            key.startswith("dataflow.solve[") for key in data["summary"]
        )
        assert any(e["name"] == "optimize" for e in data["events"])

    def test_trace_covers_pipeline_passes(self, prog, tmp_path):
        trace_path = tmp_path / "out.json"
        code, _ = invoke("--trace", str(trace_path), "opt", prog, "--pipeline")
        assert code == 0
        names = {e["name"] for e in json.loads(trace_path.read_text())["events"]}
        assert "pipeline.run" in names
        assert any(name.startswith("pass.") for name in names)

    def test_no_cache_flag_disables_memoization(self, prog, tmp_path):
        trace_path = tmp_path / "out.json"
        code, _ = invoke(
            "--no-cache", "--trace", str(trace_path), "audit", prog, "--full"
        )
        assert code == 0
        counters = json.loads(trace_path.read_text())["counters"]
        assert counters.get("cache.hit", 0) == 0

    def test_cached_audit_full_reuses_solutions(self, prog, tmp_path):
        trace_path = tmp_path / "out.json"
        code, _ = invoke("--trace", str(trace_path), "audit", prog, "--full")
        assert code == 0
        counters = json.loads(trace_path.read_text())["counters"]
        assert counters.get("cache.hit", 0) >= 1


class TestBatch:
    @pytest.fixture
    def corpus(self, tmp_path):
        (tmp_path / "first.mini").write_text(SOURCE)
        (tmp_path / "second.mini").write_text("u = c * d; v = c * d;")
        return tmp_path

    def test_table_output(self, corpus):
        code, text = invoke("batch", str(corpus))
        assert code == 0
        assert "first" in text and "second" in text
        assert "ok=2" in text

    def test_json_report(self, corpus):
        code, text = invoke("batch", str(corpus), "--jobs", "2",
                            "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["format"] == "repro-batch-report"
        assert data["tally"] == {"ok": 2}
        assert [item["name"] for item in data["items"]] == ["first", "second"]

    def test_failing_item_sets_exit_code_but_report_is_complete(self, corpus):
        (corpus / "broken.mini").write_text("x = ;")
        code, text = invoke("batch", str(corpus), "--emit", "json")
        assert code == 1
        data = json.loads(text)
        assert data["tally"] == {"ok": 2, "error": 1}
        assert len(data["items"]) == 3

    def test_missing_directory_is_cli_error(self, tmp_path):
        code, _ = invoke("batch", str(tmp_path / "nope"))
        assert code == 2

    def test_stream_emits_ndjson_then_report(self, corpus):
        code, text = invoke("batch", str(corpus), "--jobs", "2",
                            "--stream", "--emit", "json")
        assert code == 0
        lines = [json.loads(line) for line in text.splitlines() if line]
        report = lines[-1]
        assert report["format"] == "repro-batch-report"
        item_lines = lines[:-1]
        assert len(item_lines) == report["items_total"] == 2
        assert sorted(line["index"] for line in item_lines) == [0, 1]
        assert all(line["status"] == "ok" for line in item_lines)

    def test_stream_report_matches_plain_run(self, corpus):
        code, plain = invoke("batch", str(corpus), "--emit", "json")
        assert code == 0
        code, streamed = invoke("batch", str(corpus), "--stream",
                                "--emit", "json")
        assert code == 0
        plain_report = json.loads(plain)
        stream_report = json.loads(streamed.splitlines()[-1])

        def stable(report):
            return [
                (i["name"], i["status"], i.get("fingerprint"),
                 i.get("static_before"), i.get("static_after"))
                for i in report["items"]
            ]

        assert stable(stream_report) == stable(plain_report)
        assert stream_report["tally"] == plain_report["tally"]

    def test_max_failures_skips_remainder(self, corpus):
        (corpus / "aaa-broken.mini").write_text("x = ;")  # sorts first
        code, text = invoke("batch", str(corpus), "--max-failures", "1",
                            "--emit", "json")
        assert code == 1
        data = json.loads(text)
        assert data["version"] == 3
        assert data["tally"]["error"] == 1
        assert data["tally"]["skipped"] == 2

    def test_recycle_after_flag_respawns_workers(self, corpus):
        (corpus / "third.mini").write_text("w = e + f; q = e + f;")
        code, text = invoke("batch", str(corpus), "--jobs", "2",
                            "--recycle-after", "1", "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["supervisor"]["batch.worker.respawn"] >= 1

    def test_pipeline_mode(self, corpus):
        code, text = invoke("batch", str(corpus), "--pipeline")
        assert code == 0
        assert "pipeline" in text


class TestBatchShard:
    @pytest.fixture
    def corpus(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "first.mini").write_text(SOURCE)
        (root / "second.mini").write_text("u = c * d; v = c * d;")
        (root / "third.mini").write_text("w = e + f; q = e + f;")
        return root

    def test_shard_then_merge_matches_unsharded(self, corpus, tmp_path):
        from repro.batch import stable_report_json

        code, full = invoke("batch", str(corpus), "--emit", "json")
        assert code == 0
        shard_files = []
        for i in (1, 2, 3):
            code, text = invoke("batch", str(corpus), "--shard",
                                f"{i}/3", "--emit", "json")
            assert code == 0
            data = json.loads(text)
            assert data["shard"] == {
                "index": i, "total": 3, "universe": 3,
            }
            path = tmp_path / f"shard{i}.json"
            path.write_text(text)
            shard_files.append(str(path))
        code, merged = invoke("batch", "merge", *shard_files)
        assert code == 0
        assert stable_report_json(json.loads(merged)) == \
            stable_report_json(json.loads(full))

    def test_bad_shard_spec_is_cli_error(self, corpus):
        code, _ = invoke("batch", str(corpus), "--shard", "4/3")
        assert code == 2
        code, _ = invoke("batch", str(corpus), "--shard", "nope")
        assert code == 2

    def test_report_files_only_accepted_after_merge(self, corpus):
        code, _ = invoke("batch", str(corpus), "stray.json")
        assert code == 2

    def test_merge_without_reports_is_cli_error(self):
        code, _ = invoke("batch", "merge")
        assert code == 2

    def test_recursive_scan(self, corpus):
        sub = corpus / "sub"
        sub.mkdir()
        (sub / "first.mini").write_text(SOURCE)
        code, text = invoke("batch", str(corpus), "--recursive",
                            "--emit", "json")
        assert code == 0
        names = [i["name"] for i in json.loads(text)["items"]]
        assert "sub/first" in names

    def test_differential_clean_run(self, corpus):
        code, text = invoke("batch", str(corpus), "--differential",
                            "--diff-runs", "3", "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["tally"] == {"ok": 3}
        for item in data["items"]:
            assert item["differential"]["divergences"] == []


class TestCorpusCli:
    def test_generate_out_dir(self, tmp_path):
        out = tmp_path / "corpus"
        code, text = invoke("corpus", "generate", "--seed-range", "0:6",
                            "--out", str(out))
        assert code == 0
        assert "wrote 6 programs" in text
        assert len(list(out.glob("*.mini"))) == 6
        assert (out / "manifest.ndjson").exists()

    def test_generate_manifest_then_batch(self, tmp_path):
        manifest = tmp_path / "fuzz.ndjson"
        code, text = invoke("corpus", "generate", "--seed-range", "0:4",
                            "--profile", "loopy",
                            "--manifest", str(manifest))
        assert code == 0
        assert "4-item manifest" in text
        code, text = invoke("batch", str(manifest), "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["tally"] == {"ok": 4}
        assert [i["name"] for i in data["items"]] == [
            f"gen-0000000{i}" for i in range(4)
        ]

    def test_from_manifest_regenerates_bit_identically(self, tmp_path):
        first = tmp_path / "first"
        code, _ = invoke("corpus", "generate", "--seed-range", "0:3",
                         "--out", str(first))
        assert code == 0
        second = tmp_path / "second"
        code, _ = invoke("corpus", "generate", "--from-manifest",
                         str(first / "manifest.ndjson"),
                         "--out", str(second))
        assert code == 0
        for path in first.glob("*.mini"):
            assert (second / path.name).read_bytes() == \
                path.read_bytes()

    def test_generate_needs_destination(self):
        code, _ = invoke("corpus", "generate", "--seed-range", "0:3")
        assert code == 2

    def test_bad_seed_range_is_cli_error(self, tmp_path):
        code, _ = invoke("corpus", "generate", "--seed-range", "nope",
                         "--out", str(tmp_path / "c"))
        assert code == 2

    def test_from_manifest_requires_out(self, tmp_path):
        manifest = tmp_path / "m.ndjson"
        code, _ = invoke("corpus", "generate", "--seed-range", "0:2",
                         "--manifest", str(manifest))
        assert code == 0
        code, _ = invoke("corpus", "generate", "--from-manifest",
                         str(manifest))
        assert code == 2


class TestCacheDir:
    @pytest.fixture
    def corpus(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "first.mini").write_text(SOURCE)
        (root / "second.mini").write_text("u = c * d; v = c * d;")
        return root

    def test_warm_second_batch_reports_disk_hits(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        code, cold = invoke("batch", str(corpus), "--cache-dir", cache,
                            "--emit", "json")
        assert code == 0
        cold_data = json.loads(cold)
        assert cold_data["cache"]["disk_writes"] > 0
        assert cold_data["store"]["entries"] > 0

        code, warm = invoke("batch", str(corpus), "--cache-dir", cache,
                            "--emit", "json")
        assert code == 0
        warm_data = json.loads(warm)
        assert warm_data["cache"]["misses"] == 0
        assert warm_data["cache"]["disk_hits"] > 0
        assert [i["fingerprint"] for i in warm_data["items"]] == [
            i["fingerprint"] for i in cold_data["items"]
        ]

    def test_global_flag_position_also_works(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        code, _ = invoke("--cache-dir", cache, "batch", str(corpus))
        assert code == 0
        code, text = invoke("--cache-dir", cache, "batch", str(corpus))
        assert code == 0
        assert "disk hits" in text  # table footer shows store traffic

    def test_opt_uses_the_store(self, prog, tmp_path):
        cache = str(tmp_path / "cache")
        code, _ = invoke("--cache-dir", cache, "opt", prog)
        assert code == 0
        code, text = invoke("cache", "stats", "--cache-dir", cache)
        assert code == 0
        assert "entries" in text

    def test_no_cache_wins_over_cache_dir(self, prog, tmp_path):
        cache = str(tmp_path / "cache")
        code, _ = invoke("--no-cache", "--cache-dir", cache, "opt", prog)
        assert code == 0
        code, text = invoke("cache", "stats", "--cache-dir", cache,
                            "--emit", "json")
        assert code == 0
        assert json.loads(text)["entries"] == 0


class TestCacheSubcommand:
    def seed(self, tmp_path, prog):
        cache = str(tmp_path / "cache")
        code, _ = invoke("--cache-dir", cache, "opt", prog)
        assert code == 0
        return cache

    def test_stats_text_and_json(self, prog, tmp_path):
        cache = self.seed(tmp_path, prog)
        code, text = invoke("cache", "stats", "--cache-dir", cache)
        assert code == 0
        assert cache in text and "code version" in text

        code, text = invoke("cache", "stats", "--cache-dir", cache,
                            "--emit", "json")
        assert code == 0
        data = json.loads(text)
        assert data["entries"] > 0 and data["stale_entries"] == 0

    def test_gc_and_clear(self, prog, tmp_path):
        cache = self.seed(tmp_path, prog)
        code, text = invoke("cache", "gc", "--cache-dir", cache)
        assert code == 0
        assert "removed 0" in text  # nothing stale yet

        code, text = invoke("cache", "clear", "--cache-dir", cache)
        assert code == 0
        code, text = invoke("cache", "stats", "--cache-dir", cache,
                            "--emit", "json")
        assert json.loads(text)["entries"] == 0

    def test_requires_cache_dir(self):
        code, _ = invoke("cache", "stats")
        assert code == 2


class TestHelpers:
    def test_parse_bindings(self):
        assert _parse_bindings(["a=1", "b = -2"]) == {"a": 1, "b": -2}

    def test_parse_bindings_rejects_garbage(self):
        with pytest.raises(CliError):
            _parse_bindings(["a=x"])

    def test_load_program_missing_file(self):
        with pytest.raises(CliError, match="cannot read"):
            load_program("/no/such/file.mini")


class TestCacheBudget:
    def seed(self, tmp_path, prog):
        cache = str(tmp_path / "cache")
        code, _ = invoke("--cache-dir", cache, "opt", prog)
        assert code == 0
        return cache

    def test_gc_max_bytes_evicts_to_budget(self, prog, tmp_path):
        cache = self.seed(tmp_path, prog)
        code, text = invoke(
            "cache", "gc", "--cache-dir", cache, "--max-bytes", "0"
        )
        assert code == 0
        assert "evicted" in text and "0-byte budget" in text
        code, text = invoke(
            "cache", "stats", "--cache-dir", cache, "--emit", "json"
        )
        data = json.loads(text)
        assert data["entries"] == 0
        assert data["evicted_entries"] > 0

    def test_stats_text_reports_evictions(self, prog, tmp_path):
        cache = self.seed(tmp_path, prog)
        code, text = invoke("cache", "stats", "--cache-dir", cache)
        assert code == 0
        assert "evictions" in text

    def test_plain_gc_never_evicts(self, prog, tmp_path):
        cache = self.seed(tmp_path, prog)
        code, text = invoke("cache", "gc", "--cache-dir", cache)
        assert code == 0
        assert "evicted" not in text
        code, text = invoke(
            "cache", "stats", "--cache-dir", cache, "--emit", "json"
        )
        assert json.loads(text)["entries"] > 0


class TestServeCommand:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.jobs == 2
        assert args.queue_limit == 8
        assert args.response_cache == 256
        assert args.recycle_after is None
        assert not args.allow_call

    def test_serve_end_to_end_over_the_cli(self):
        import threading
        import time

        from repro.service import ServeClient
        from repro.service.protocol import decode

        out = io.StringIO()
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(["serve", "--jobs", "1"], out=out)
            )
        )
        thread.start()
        try:
            deadline = time.monotonic() + 10.0
            while "\n" not in out.getvalue():
                assert time.monotonic() < deadline, "no readiness line"
                time.sleep(0.02)
            ready = decode(
                out.getvalue().splitlines()[0].encode("utf-8")
            )
            assert ready["type"] == "listening"
            with ServeClient(ready["host"], ready["port"], 30) as client:
                cold = client.optimize("x = a + b; y = a + b;")
                warm = client.optimize("x = a + b; y = a + b;")
                assert cold["status"] == warm["status"] == "ok"
                assert warm["cached"] is True
                client.shutdown()
        finally:
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert codes == [0]
