"""Unit tests for the baseline algorithms (Morel-Renvoise, GCSE, LICM)."""

from tests.helpers import AB, diamond, do_while_invariant, straight_line

from repro.baselines.gcse import gcse_placements, gcse_transform
from repro.baselines.licm import licm_transform, loop_invariant_exprs
from repro.baselines.morel_renvoise import (
    analyze_morel_renvoise,
    morel_renvoise_transform,
)
from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.pipeline import optimize
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr, Var
from repro.ir.validate import validate_cfg


class TestMorelRenvoise:
    def test_full_redundancy_removed(self):
        cfg = straight_line(["x = a + b"], ["y = a + b"])
        result = morel_renvoise_transform(cfg)
        assert str(result.cfg.block("s1").instrs[0]).endswith("a_plus_b")
        assert check_equivalence(cfg, result.cfg).equivalent

    def test_diamond_partial_redundancy_removed(self):
        cfg = diamond()
        result = morel_renvoise_transform(cfg)
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        assert report.improvements >= 1

    def test_loop_invariant_hoisted(self):
        cfg = do_while_invariant()
        result = morel_renvoise_transform(cfg)
        report = compare_per_path(cfg, result.cfg, max_branches=5)
        assert report.safe
        # The body's a+b must no longer be evaluated per iteration.
        assert report.improvements >= 1

    def test_analysis_boundaries(self):
        cfg = diamond()
        analysis = analyze_morel_renvoise(cfg)
        assert not analysis.ppin[cfg.entry]
        assert not analysis.ppout[cfg.exit]

    def test_delete_only_where_antloc(self):
        cfg = diamond()
        analysis = analyze_morel_renvoise(cfg)
        for label in cfg.labels:
            assert analysis.delete[label].issubset(analysis.local.antloc[label])

    def test_transform_validates(self):
        result = morel_renvoise_transform(diamond())
        validate_cfg(result.cfg)

    def test_never_beats_lcm(self):
        for graph in (diamond(), do_while_invariant()):
            lcm = optimize(graph, "lcm")
            mr = optimize(graph, "mr")
            head = compare_per_path(lcm.cfg, mr.cfg, max_branches=5)
            assert head.improvements == 0  # MR never strictly better


class TestGCSE:
    def test_full_redundancy_removed(self):
        cfg = straight_line(["x = a + b"], ["q = c * 2"], ["y = a + b"])
        result = gcse_transform(cfg)
        assert check_equivalence(cfg, result.cfg).equivalent
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        assert report.total_after < report.total_before

    def test_partial_redundancy_left_alone(self):
        cfg = diamond()
        plans = gcse_placements(cfg)
        plan = next(p for p in plans if p.expr == AB)
        assert plan.is_identity

    def test_no_insertions_ever(self):
        for graph in (diamond(), do_while_invariant()):
            for plan in gcse_placements(graph):
                assert not plan.insert_edges
                assert not plan.insert_entries
                assert not plan.insert_exits

    def test_kill_respected(self):
        cfg = straight_line(["x = a + b"], ["a = 1"], ["y = a + b"])
        plans = gcse_placements(cfg)
        plan = next(p for p in plans if p.expr == AB)
        assert plan.is_identity


class TestLICM:
    def test_invariant_detection(self):
        cfg = do_while_invariant()
        invariants = loop_invariant_exprs(cfg, {"body"})
        assert AB in invariants
        # i + 1 and i < n are variant (i is assigned in the loop).
        from repro.ir.expr import Const

        assert BinExpr("+", Var("i"), Const(1)) not in invariants
        assert BinExpr("<", Var("i"), Var("n")) not in invariants

    def test_hoists_and_preserves_semantics(self):
        cfg = do_while_invariant()
        result = licm_transform(cfg)
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent
        assert any("licm" in t for t in result.temps)
        validate_cfg(result.cfg)

    def test_speculative_on_zero_trip_while(self):
        # while-loop: body may never run; hoisting evaluates a+b anyway.
        b = CFGBuilder()
        b.block("head", "t = i < n").branch("t", "body", "out")
        b.block("body", "z = a + b", "i = i + 1").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        result = licm_transform(cfg)
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent
        report = compare_per_path(cfg, result.cfg, max_branches=5)
        # Zero-trip path: original never evaluates a+b, LICM does.
        assert not report.safe

    def test_lcm_not_speculative_on_same_graph(self):
        b = CFGBuilder()
        b.block("head", "t = i < n").branch("t", "body", "out")
        b.block("body", "z = a + b", "i = i + 1").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        result = optimize(cfg, "lcm")
        assert compare_per_path(cfg, result.cfg, max_branches=5).safe

    def test_no_loops_means_no_change(self):
        cfg = diamond()
        result = licm_transform(cfg)
        assert str(result.cfg) == str(cfg)

    def test_nested_loops_hoist_outer_invariant(self):
        from repro.lang.lower import compile_program

        cfg = compile_program(
            """
            acc = 0;
            do {
                do {
                    step = a * k;
                    acc = acc + step;
                    j = j - 1;
                    tin = j > 0;
                } while (tin);
                i = i - 1;
                tout = i > 0;
            } while (tout);
            """
        )
        result = licm_transform(cfg)
        assert check_equivalence(cfg, result.cfg, runs=20).equivalent
