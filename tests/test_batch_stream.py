"""Tests for the supervised streaming driver: `iter_batch`, hard
deadlines, early exit, worker recycling.

Fault payloads come from :mod:`repro.batch.testing` (package-shipped,
also used by the CI kill-resilience smoke) and from
``tests.test_batch`` (resolved by name inside forked workers).
"""

import multiprocessing
import time
from pathlib import Path

from tests.helpers import diamond

from repro.batch import (
    BatchConfig,
    WorkItem,
    items_from_cfgs,
    items_from_dir,
    iter_batch,
    run_batch,
)
from repro.obs.trace import Tracer, tracing

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _call_item(name, ref, cost=0.0):
    return WorkItem(name, "call", ref, cost=cost)


def _ok_items(count):
    # Distinct names, same tiny program: cheap and deterministic.
    return items_from_cfgs([diamond()] * count,
                           [f"ok{i}" for i in range(count)])


def _no_worker_children():
    # Give freshly killed/stopped processes a beat to be reaped.
    for _ in range(50):
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


# -- streaming basics --------------------------------------------------------

class TestStreaming:
    def test_every_index_yielded_exactly_once(self):
        items = items_from_dir(str(CORPUS_DIR))
        records = list(iter_batch(items, BatchConfig(jobs=2)))
        assert sorted(record.index for record in records) == list(
            range(len(items))
        )
        assert all(record.ok for record in records)

    def test_indices_reassemble_input_order(self):
        items = items_from_dir(str(CORPUS_DIR))
        records = sorted(
            iter_batch(items, BatchConfig(jobs=2)),
            key=lambda record: record.index,
        )
        assert [record.name for record in records] == [
            item.name for item in items
        ]

    def test_serial_stream_matches_input_order(self):
        items = items_from_dir(str(CORPUS_DIR))[:4]
        records = list(iter_batch(items, BatchConfig(jobs=1)))
        assert [record.index for record in records] == list(range(4))

    def test_iter_batch_and_run_batch_report_parity(self):
        items = items_from_dir(str(CORPUS_DIR))
        config = BatchConfig(jobs=2, keep_ir=True)
        streamed = sorted(
            iter_batch(items, config), key=lambda record: record.index
        )
        collected = run_batch(items, config)
        assert [r.name for r in streamed] == [
            i.name for i in collected.items
        ]
        assert [r.status for r in streamed] == [
            i.status for i in collected.items
        ]
        assert [r.fingerprint for r in streamed] == [
            i.fingerprint for i in collected.items
        ]
        assert [r.ir for r in streamed] == [i.ir for i in collected.items]

    def test_abandoning_the_stream_leaves_no_workers(self):
        items = _ok_items(8)
        iterator = iter_batch(items, BatchConfig(jobs=2))
        next(iterator)
        iterator.close()  # consumer walks away mid-batch
        assert _no_worker_children()


# -- early exit --------------------------------------------------------------

class TestEarlyExit:
    def test_stop_after_failures_serial_skips_the_rest(self):
        items = [
            _call_item("boom", "tests.test_batch:_crash"),
            _call_item("never-one", "tests.test_batch:_ok_program"),
            _call_item("never-two", "tests.test_batch:_ok_program"),
        ]
        config = BatchConfig(jobs=1, stop_after_failures=1)
        records = list(iter_batch(items, config))
        assert [record.status for record in records] == [
            "error", "skipped", "skipped",
        ]
        assert all("stopped after 1 failed" in record.message
                   for record in records[1:])

    def test_stop_after_failures_pooled_cancels_pending(self):
        # The crash is predicted-heaviest, so LPT dispatches it first;
        # once it fails the queue tail must come back skipped, every
        # index exactly once.
        items = [_call_item("boom", "tests.test_batch:_crash", cost=100.0)]
        items += [
            _call_item(f"ok{i}", "tests.test_batch:_ok_program", cost=1.0)
            for i in range(6)
        ]
        config = BatchConfig(jobs=2, stop_after_failures=1)
        records = list(iter_batch(items, config))
        assert sorted(record.index for record in records) == list(
            range(len(items))
        )
        statuses = {record.name: record.status for record in records}
        assert statuses["boom"] == "error"
        assert "skipped" in statuses.values()
        assert set(statuses.values()) <= {"ok", "error", "skipped"}
        assert _no_worker_children()

    def test_skipped_items_count_in_report(self):
        items = [_call_item("boom", "tests.test_batch:_crash", cost=100.0)]
        items += [
            _call_item(f"ok{i}", "tests.test_batch:_ok_program", cost=1.0)
            for i in range(4)
        ]
        report = run_batch(items, BatchConfig(jobs=2, stop_after_failures=1))
        assert not report.ok
        assert len(report.items) == 5
        assert report.tally.get("skipped", 0) >= 1
        assert report.supervisor["batch.item.skipped"] == report.tally[
            "skipped"
        ]

    def test_batch_deadline_serial(self):
        items = _ok_items(3)
        config = BatchConfig(jobs=1, deadline_s=0.0)
        records = list(iter_batch(items, config))
        assert [record.status for record in records] == ["skipped"] * 3
        assert all("deadline" in record.message for record in records)

    def test_batch_deadline_kills_inflight_pooled_items(self):
        # No per-item timeout at all: only the batch deadline ends the
        # two Python-level spins, which come back skipped, not hung.
        items = [
            _call_item("spin-one", "tests.test_batch:_hang"),
            _call_item("spin-two", "tests.test_batch:_hang"),
        ]
        config = BatchConfig(jobs=2, deadline_s=0.4)
        start = time.monotonic()
        records = list(iter_batch(items, config))
        assert time.monotonic() - start < 10.0
        assert [record.status for record in records] == ["skipped"] * 2
        assert _no_worker_children()


# -- hard deadlines (the kill path) -----------------------------------------

class TestHardDeadline:
    def test_c_hang_is_killed_and_rest_completes(self):
        # busy_loop_c blocks inside one C call, so the worker's SIGALRM
        # can never fire; the supervisor must SIGKILL the worker within
        # timeout + grace, record a clean timeout, respawn, and every
        # other item must still complete ok.
        items = [
            WorkItem("spin-c", "call", "repro.batch.testing:busy_loop_c",
                     cost=100.0),
        ]
        items += [
            _call_item(f"ok{i}", "tests.test_batch:_ok_program", cost=1.0)
            for i in range(4)
        ]
        config = BatchConfig(jobs=2, timeout=0.4, grace=0.4)
        tracer = Tracer()
        start = time.monotonic()
        with tracing(tracer):
            report = run_batch(items, config)
        elapsed = time.monotonic() - start
        by_name = {item.name: item for item in report.items}
        assert by_name["spin-c"].status == "timeout"
        assert "killed" in by_name["spin-c"].message
        assert "0.4" in by_name["spin-c"].message
        for i in range(4):
            assert by_name[f"ok{i}"].status == "ok"
        # Killed well before a runaway would show (item budget is 0.8s
        # hard; the whole batch finishing fast proves the kill).
        assert elapsed < 15.0
        assert report.supervisor["batch.item.killed"] == 1
        assert report.supervisor["batch.worker.respawn"] >= 1
        # The same events are visible as trace counters in the parent.
        assert tracer.counters["batch.item.killed"] == 1
        assert tracer.counters["batch.worker.respawn"] >= 1
        assert _no_worker_children()

    def test_py_hang_still_uses_soft_timeout_and_worker_survives(self):
        # A bytecode-level spin is SIGALRM-interruptible: no kill, no
        # respawn — the warm worker handles the next item.
        items = [
            _call_item("spin-py", "tests.test_batch:_hang", cost=100.0),
            _call_item("fine", "tests.test_batch:_ok_program", cost=1.0),
        ]
        report = run_batch(items, BatchConfig(jobs=2, timeout=0.4, grace=5.0))
        by_name = {item.name: item for item in report.items}
        assert by_name["spin-py"].status == "timeout"
        assert "exceeded 0.4s budget" in by_name["spin-py"].message
        assert by_name["fine"].status == "ok"
        assert (report.supervisor or {}).get("batch.item.killed", 0) == 0

    def test_killed_item_respects_retry_budget(self):
        items = [
            WorkItem("spin-c", "call", "repro.batch.testing:busy_loop_c"),
            _call_item("fine", "tests.test_batch:_ok_program"),
        ]
        config = BatchConfig(jobs=2, timeout=0.3, grace=0.3, retries=1)
        report = run_batch(items, config)
        by_name = {item.name: item for item in report.items}
        assert by_name["spin-c"].status == "timeout"
        assert by_name["spin-c"].attempts == 2
        assert by_name["fine"].status == "ok"
        assert report.supervisor["batch.item.killed"] == 2


# -- worker recycling --------------------------------------------------------

class TestRecycling:
    def test_recycle_after_n_items_respawns_workers(self):
        items = _ok_items(6)
        config = BatchConfig(jobs=2, max_tasks_per_worker=2)
        tracer = Tracer()
        with tracing(tracer):
            report = run_batch(items, config)
        assert report.ok
        assert report.supervisor["batch.worker.recycled"] >= 1
        assert report.supervisor["batch.worker.respawn"] >= 1
        assert tracer.counters["batch.worker.respawn"] >= 1
        # Recycling is visible in the pids too: more distinct worker
        # processes served the batch than the pool is wide.
        pids = {item.pid for item in report.items}
        assert len(pids) > 2
        assert _no_worker_children()

    def test_no_recycling_without_the_knob(self):
        items = _ok_items(6)
        report = run_batch(items, BatchConfig(jobs=2))
        assert report.ok
        assert report.supervisor is None
        assert len({item.pid for item in report.items}) <= 2
