"""Edge cases across the stack: empty universes, degenerate graphs,
multi-expression interplay, and torture-scale pipelines."""

import pytest

from tests.helpers import straight_line

from repro.analysis.local import compute_local_properties
from repro.core.lcm import analyze_lcm, lcm_placements
from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.pipeline import available_strategies, optimize
from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import GenKillTransfer
from repro.dataflow.stats import SolverStats
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr, Var
from repro.ir.validate import validate_cfg


class TestEmptyUniverse:
    """Programs with no candidate computations (width-0 vectors)."""

    def test_copies_only_program(self):
        cfg = straight_line(["x = y", "z = 5", "w = x"])
        analysis = analyze_lcm(cfg)
        assert analysis.universe.width == 0
        assert lcm_placements(analysis) == []

    @pytest.mark.parametrize("strategy", [s.name for s in available_strategies()])
    def test_every_strategy_handles_empty_universe(self, strategy):
        cfg = straight_line(["x = y", "z = 5"])
        result = optimize(cfg, strategy)
        assert check_equivalence(cfg, result.cfg).equivalent

    def test_empty_program(self):
        cfg = CFGBuilder().build()
        result = optimize(cfg, "lcm")
        validate_cfg(result.cfg)


class TestDegenerateGraphs:
    def test_single_block_single_instruction(self):
        cfg = straight_line(["x = a + b"])
        result = optimize(cfg, "lcm")
        # One occurrence, no redundancy: untouched.
        assert [str(i) for i in result.cfg.block("s0").instrs] == ["x = a + b"]

    def test_self_loop_block(self):
        b = CFGBuilder()
        b.block("spin", "x = a + b", "i = i + 1", "t = i < n").branch(
            "t", "spin", "out"
        )
        b.block("out", "y = a + b").to_exit()
        cfg = b.build()
        result = optimize(cfg, "lcm")
        assert check_equivalence(cfg, result.cfg, runs=20).equivalent
        assert compare_per_path(cfg, result.cfg, max_branches=5).safe
        # The loop-carried a+b is invariant: hoisted to the loop entry.
        report = compare_per_path(cfg, result.cfg, max_branches=5)
        assert report.improvements >= 1

    def test_branch_arms_to_exit_directly(self):
        b = CFGBuilder()
        b.block("c", "x = a + b").branch("p", "l", "r")
        b.block("l", "y = a + b").to_exit()
        b.block("r").to_exit()
        cfg = b.build()
        result = optimize(cfg, "lcm")
        assert compare_per_path(cfg, result.cfg).safe
        join = result.cfg
        assert check_equivalence(cfg, join).equivalent

    def test_long_chain(self):
        groups = [["x0 = a + b"]] + [
            [f"x{i} = x{i - 1}"] for i in range(1, 30)
        ] + [["y = a + b"]]
        cfg = straight_line(*groups)
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        assert report.total_after < report.total_before


class TestMultiExpressionInterplay:
    def test_chained_candidates_with_shared_operands(self):
        # Killing `a` invalidates a+b but not c*d.
        b = CFGBuilder()
        b.block("one", "x = a + b", "u = c * d").jump("two")
        b.block("two", "a = c * d").jump("three")
        b.block("three", "y = a + b", "v = c * d").to_exit()
        cfg = b.build()
        analysis = analyze_lcm(cfg)
        ab = analysis.universe.index_of(BinExpr("+", Var("a"), Var("b")))
        cd = analysis.universe.index_of(BinExpr("*", Var("c"), Var("d")))
        assert ab not in analysis.avin["three"]
        assert cd in analysis.avin["three"]
        result = optimize(cfg, "lcm")
        assert check_equivalence(cfg, result.cfg).equivalent
        # c*d collapses to one evaluation; a+b must be recomputed.
        report = compare_per_path(cfg, result.cfg)
        assert report.total_after < report.total_before

    def test_expression_whose_operand_is_another_result(self):
        cfg = straight_line(["t1 = a + b", "t2 = t1 * 2"], ["u1 = a + b", "u2 = u1 * 2"])
        result = optimize(cfg, "lcm")
        assert check_equivalence(cfg, result.cfg).equivalent
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        # a+b is deleted in s1.  t1*2 and u1*2 are *different*
        # expressions (different operand names), so only one pair
        # collapses; copy propagation in the full pipeline would expose
        # the second.
        assert report.total_after < report.total_before

    def test_pipeline_exposes_second_order_redundancy(self):
        from repro.passes import standard_pipeline

        cfg = straight_line(
            ["t1 = a + b", "t2 = t1 * 2"], ["u1 = a + b", "u2 = u1 * 2"]
        )
        result = standard_pipeline(cfg)
        assert check_equivalence(
            cfg, result.cfg, compare_decisions=False
        ).equivalent


class TestTortureScale:
    def test_large_random_program_full_pipeline(self):
        from repro.bench.generators import GeneratorConfig, random_cfg
        from repro.passes import standard_pipeline

        cfg = random_cfg(99, GeneratorConfig(statements=60, max_depth=4))
        assert len(cfg) > 40
        result = standard_pipeline(cfg)
        validate_cfg(result.cfg)
        assert check_equivalence(
            cfg, result.cfg, runs=10, compare_decisions=False
        ).equivalent

    def test_many_expressions_wide_vectors(self):
        instrs = [f"x{i} = a{i} + b{i}" for i in range(40)]
        cfg = straight_line(instrs, instrs)  # second block fully redundant
        local = compute_local_properties(cfg)
        assert local.universe.width == 40
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        assert report.total_after == report.total_before // 2


class TestDataflowPlumbing:
    def test_genkill_transfer_callable(self):
        gen = {"b": BitVector.of(2, [0])}
        keep = {"b": BitVector.of(2, [1])}
        transfer = GenKillTransfer(gen, keep)
        out = transfer("b", BitVector.of(2, [0, 1]))
        assert list(out) == [0, 1]
        out2 = transfer("b", BitVector.empty(2))
        assert list(out2) == [0]

    def test_solver_stats_merged(self):
        a = SolverStats(sweeps=2, node_visits=10, bitvec_ops={"and": 3})
        b = SolverStats(sweeps=1, node_visits=4, bitvec_ops={"and": 1, "or": 2})
        merged = a.merged(b)
        assert merged.sweeps == 3
        assert merged.node_visits == 14
        assert merged.bitvec_ops == {"and": 4, "or": 2}
        assert merged.total_bitvec_ops == 6
