"""Unit tests for execution-frequency profiles."""

from tests.helpers import diamond, do_while_invariant, straight_line

from repro.analysis.frequency import (
    block_frequencies,
    check_conservation,
    expected_evaluations,
    profile_from_runs,
)
from repro.interp.random_inputs import random_envs


class TestProfileFromRuns:
    def test_straightline_counts_runs(self):
        cfg = straight_line(["x = a + b"])
        profile = profile_from_runs(cfg, random_envs(cfg, 5, seed=1))
        assert profile.edge(("entry", "s0")) == 5
        assert profile.block("s0") == 5

    def test_diamond_splits_by_branch(self):
        cfg = diamond()
        envs = [{"a": 0, "b": 1}, {"a": 1, "b": 0}, {"a": 2, "b": 5}]
        profile = profile_from_runs(cfg, envs)
        assert profile.edge(("cond", "left")) == 2  # a < b twice
        assert profile.edge(("cond", "right")) == 1
        assert profile.block("join") == 3

    def test_loop_counts_iterations(self):
        cfg = do_while_invariant()
        profile = profile_from_runs(cfg, [{"n": 4}])
        assert profile.edge(("body", "body")) == 3  # 4 iterations
        assert profile.block("body") == 4

    def test_unseen_edge_is_zero(self):
        cfg = diamond()
        profile = profile_from_runs(cfg, [{"a": 0, "b": 1}])
        assert profile.edge(("cond", "right")) == 0

    def test_attach_sets_weights(self):
        cfg = diamond()
        profile = profile_from_runs(cfg, [{"a": 0, "b": 1}] * 3)
        profile.attach()
        assert cfg.weight(("cond", "left")) == 3
        # Unseen edges keep the default weight.
        assert cfg.weight(("cond", "right")) == 1

    def test_attach_minimum_fills_cold_edges(self):
        cfg = diamond()
        profile = profile_from_runs(cfg, [{"a": 0, "b": 1}])
        profile.attach(minimum=1)
        assert cfg.weight(("cond", "right")) == 1


class TestBlockFrequencies:
    def test_derived_from_weights(self):
        cfg = diamond()
        cfg.set_weight(("entry", "cond"), 10)
        cfg.set_weight(("cond", "left"), 7)
        cfg.set_weight(("cond", "right"), 3)
        cfg.set_weight(("left", "join"), 7)
        cfg.set_weight(("right", "join"), 3)
        cfg.set_weight(("join", "exit"), 10)
        freq = block_frequencies(cfg)
        assert freq["cond"] == 10
        assert freq["left"] == 7
        assert freq["join"] == 10
        assert freq["entry"] == 10  # entry counts its outflow

    def test_default_weights(self):
        cfg = straight_line(["x = 1"])
        assert block_frequencies(cfg)["s0"] == 1


class TestConservation:
    def test_profiled_weights_conserve(self):
        cfg = do_while_invariant()
        profile = profile_from_runs(
            cfg, [{"n": k} for k in (1, 3, 5)]
        )
        profile.attach(minimum=0)
        # Real traversal counts always conserve flow where all edges
        # were observed.
        violations = [
            v for v in check_conservation(cfg, default=0)
        ]
        assert violations == []

    def test_violation_detected(self):
        cfg = diamond()
        cfg.set_weight(("entry", "cond"), 10)
        cfg.set_weight(("cond", "left"), 9)
        cfg.set_weight(("cond", "right"), 9)
        violations = check_conservation(cfg)
        assert any("cond" in v for v in violations)


class TestExpectedEvaluations:
    def test_unit_profile_counts_statically(self):
        cfg = straight_line(["x = a + b", "y = c * 2"])
        assert expected_evaluations(cfg) == 2

    def test_hot_block_scales(self):
        cfg = do_while_invariant()
        profile = profile_from_runs(cfg, [{"n": 10}])
        profile.attach(minimum=1)
        hot = expected_evaluations(cfg)
        # body runs 10 times with 2 computations + after runs once.
        assert hot >= 20

    def test_explicit_frequency_map(self):
        cfg = straight_line(["x = a + b"])
        assert expected_evaluations(cfg, {"s0": 100}) == 100
