"""Unit tests for the transformation engine."""

import pytest

from tests.helpers import AB, diamond, straight_line

from repro.core.placement import Placement, PlacementError
from repro.core.transform import apply_placements, eliminate_dead_code
from repro.core.optimality import check_equivalence
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr, Var
from repro.ir.validate import validate_cfg


def diamond_plan():
    return Placement.make(
        AB, "t.ab", insert_edges=[("right", "join")], delete_blocks=["join"]
    )


class TestApply:
    def test_input_not_mutated(self):
        cfg = diamond()
        before = str(cfg)
        apply_placements(cfg, [diamond_plan()])
        assert str(cfg) == before

    def test_deleted_occurrence_reads_temp(self):
        result = apply_placements(diamond(), [diamond_plan()])
        join = result.cfg.block("join")
        assert str(join.instrs[0]) == "y = t.ab"

    def test_edge_insertion_creates_split_block(self):
        result = apply_placements(diamond(), [diamond_plan()])
        split = [b for b in result.cfg if b.label.startswith("ins_")]
        assert len(split) == 1
        assert str(split[0].instrs[0]) == "t.ab = a + b"

    def test_generator_gets_copy(self):
        result = apply_placements(diamond(), [diamond_plan()])
        left = result.cfg.block("left")
        assert [str(i) for i in left.instrs] == [
            "t.ab = a + b",
            "x = t.ab",
        ]
        assert ("left", "t.ab") in result.copies_added

    def test_transformed_graph_validates(self):
        result = apply_placements(diamond(), [diamond_plan()])
        validate_cfg(result.cfg)

    def test_semantics_preserved(self):
        cfg = diamond()
        result = apply_placements(cfg, [diamond_plan()])
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_entry_insertion_prepends(self):
        cfg = straight_line(["x = a + b"])
        plan = Placement.make(
            AB, "t.ab", insert_entries=["s0"], delete_blocks=["s0"]
        )
        result = apply_placements(cfg, [plan])
        s0 = result.cfg.block("s0")
        assert [str(i) for i in s0.instrs] == ["t.ab = a + b", "x = t.ab"]

    def test_exit_insertion_appends(self):
        cfg = straight_line(["x = 1"], ["y = a + b"])
        plan = Placement.make(
            AB, "t.ab", insert_exits=["s0"], delete_blocks=["s1"]
        )
        result = apply_placements(cfg, [plan])
        assert str(result.cfg.block("s0").instrs[-1]) == "t.ab = a + b"
        assert check_equivalence(cfg, result.cfg).equivalent

    def test_shared_edge_split_for_two_expressions(self):
        b = CFGBuilder()
        b.block("cond", "p = k < 2").branch("p", "one", "two")
        b.block("one", "x = a + b", "u = c * d").jump("join")
        b.block("two").jump("join")
        b.block("join", "y = a + b", "v = c * d").to_exit()
        cfg = b.build()
        cd = BinExpr("*", Var("c"), Var("d"))
        plans = [
            Placement.make(AB, "t.ab", insert_edges=[("two", "join")],
                           delete_blocks=["join"]),
            Placement.make(cd, "t.cd", insert_edges=[("two", "join")],
                           delete_blocks=["join"]),
        ]
        result = apply_placements(cfg, plans)
        splits = [blk for blk in result.cfg if blk.label.startswith("ins_")]
        assert len(splits) == 1
        assert len(splits[0].instrs) == 2
        assert check_equivalence(cfg, result.cfg).equivalent

    def test_duplicate_temps_rejected(self):
        plans = [
            Placement.make(AB, "t.same"),
            Placement.make(BinExpr("*", Var("c"), Var("d")), "t.same"),
        ]
        with pytest.raises(PlacementError, match="distinct"):
            apply_placements(diamond(), plans)

    def test_temp_collision_with_program_var_uniquified(self):
        cfg = diamond()
        plan = Placement.make(
            AB, "x", insert_edges=[("right", "join")], delete_blocks=["join"]
        )  # "x" exists in the diamond
        result = apply_placements(cfg, [plan])
        assert result.placements[0].temp == "x~2"
        assert "x~2" in result.cfg.variables()
        assert check_equivalence(cfg, result.cfg).equivalent


class TestIsolatedCopyCollapse:
    def test_pointless_copy_collapsed(self):
        # No deletions anywhere: the tentative copy at the only
        # occurrence must be undone.
        cfg = straight_line(["x = a + b"])
        plan = Placement.make(AB, "t.ab")
        result = apply_placements(cfg, [plan])
        assert [str(i) for i in result.cfg.block("s0").instrs] == ["x = a + b"]
        assert ("s0", "t.ab") in result.copies_collapsed

    def test_useful_copy_kept(self):
        result = apply_placements(diamond(), [diamond_plan()])
        assert ("left", "t.ab") not in result.copies_collapsed
        assert result.copy_blocks == {"left"}

    def test_collapse_disabled_keeps_copy(self):
        cfg = straight_line(["x = a + b"])
        plan = Placement.make(AB, "t.ab")
        result = apply_placements(
            cfg, [plan], collapse_isolated_copies=False,
            drop_dead_insertions=False,
        )
        assert [str(i) for i in result.cfg.block("s0").instrs] == [
            "t.ab = a + b",
            "x = t.ab",
        ]

    def test_copy_kept_for_same_block_consumer(self):
        # x = a+b; later y = a+b deleted in the same block chain.
        cfg = straight_line(["x = a + b"], ["y = a + b"])
        plan = Placement.make(AB, "t.ab", delete_blocks=["s1"])
        result = apply_placements(cfg, [plan])
        assert str(result.cfg.block("s1").instrs[0]) == "y = t.ab"
        assert ("s0", "t.ab") not in result.copies_collapsed
        assert check_equivalence(cfg, result.cfg).equivalent


class TestDeadInsertionCleanup:
    def test_useless_edge_insertion_dropped(self):
        # Insert on an edge although nothing consumes the temp.
        cfg = diamond()
        plan = Placement.make(AB, "t.ab", insert_edges=[("cond", "right")])
        result = apply_placements(cfg, [plan])
        split = [b for b in result.cfg if b.label.startswith("ins_")]
        assert split and split[0].is_empty
        assert result.insertions_dropped

    def test_eliminate_dead_code_counts(self):
        b = CFGBuilder()
        b.block("s", "t = a + b", "x = c * 2").to_exit()
        cfg = b.build()
        removed = eliminate_dead_code(cfg, ["t"])
        assert removed == 1
        assert [str(i) for i in cfg.block("s").instrs] == ["x = c * 2"]

    def test_eliminate_dead_code_keeps_live(self):
        b = CFGBuilder()
        b.block("s", "t = a + b", "x = t + 1").to_exit()
        cfg = b.build()
        assert eliminate_dead_code(cfg, ["t"]) == 0

    def test_eliminate_dead_code_cascades(self):
        b = CFGBuilder()
        b.block("s", "t1 = a + b", "t2 = t1 + 1").to_exit()
        cfg = b.build()
        # t2 is dead; removing it makes t1 dead too.
        assert eliminate_dead_code(cfg, ["t1", "t2"]) == 2
