"""Unit tests for the loop-nest analysis."""

from tests.helpers import diamond, do_while_invariant

from repro.analysis.loops import LoopNest
from repro.ir.builder import CFGBuilder
from repro.lang import compile_program


def nested():
    return compile_program(
        """
        i = 0;
        while (i < n) {
            j = 0;
            while (j < m) {
                s = s + 1;
                j = j + 1;
            }
            i = i + 1;
        }
        """
    )


class TestLoopNest:
    def test_no_loops_in_dag(self):
        assert len(LoopNest.compute(diamond())) == 0

    def test_single_loop(self):
        nest = LoopNest.compute(do_while_invariant())
        assert len(nest) == 1
        (loop,) = list(nest)
        assert loop.header == "body"
        assert loop.body == {"body"}
        assert loop.depth == 1
        assert loop.parent is None

    def test_nested_structure(self):
        nest = LoopNest.compute(nested())
        assert len(nest) == 2
        inner = min(nest, key=lambda l: len(l.body))
        outer = max(nest, key=lambda l: len(l.body))
        assert inner.parent == outer.header
        assert outer.parent is None
        assert inner.depth == 2
        assert outer.depth == 1
        assert inner.body < outer.body

    def test_orderings(self):
        nest = LoopNest.compute(nested())
        inner_first = nest.innermost_first()
        assert len(inner_first[0].body) <= len(inner_first[-1].body)
        outer_first = nest.outermost_first()
        assert len(outer_first[0].body) >= len(outer_first[-1].body)

    def test_depth_of_blocks(self):
        nest = LoopNest.compute(nested())
        inner = min(nest, key=lambda l: len(l.body))
        inner_body_block = next(
            b for b in inner.body if b != inner.header
        )
        assert nest.depth_of(inner_body_block) == 2
        assert nest.depth_of("entry") == 0

    def test_exits_and_entries(self):
        nest = LoopNest.compute(do_while_invariant())
        (loop,) = list(nest)
        cfg = do_while_invariant()
        assert loop.exits(cfg) == [("body", "after")]
        assert loop.entry_edges(cfg) == [("init", "body")]

    def test_merged_back_edges(self):
        # Two back edges to one header merge into one loop.
        b = CFGBuilder()
        b.block("head", "t = i < n").branch("t", "b1", "out")
        b.block("b1", "i = i + 1").branch("q", "head", "b2")
        b.block("b2", "i = i + 2").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        nest = LoopNest.compute(cfg)
        assert len(nest) == 1
        loop = nest.loop_of("head")
        assert len(loop.back_edges) == 2
        assert loop.body == {"head", "b1", "b2"}

    def test_top_level(self):
        nest = LoopNest.compute(nested())
        tops = nest.top_level()
        assert len(tops) == 1
        assert tops[0].depth == 1
