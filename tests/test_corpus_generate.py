"""Tests for seeded corpus minting (:mod:`repro.corpus.generate`)."""

import hashlib
import json

import pytest

from repro.batch.driver import WorkItem
from repro.bench.generators import GeneratorConfig
from repro.corpus import (
    KIND_GENERATED,
    generate_source,
    generated_items,
    item_name,
    item_seed,
    load_generated,
    parse_seed_range,
    parse_spec,
    profile_config,
    regenerate_corpus,
    spec_payload,
    write_corpus,
)
from repro.obs.fingerprint import cfg_fingerprint

#: sha256 of ``generate_source(7, profile_config(p))`` per profile.
#: Pins cross-version determinism: the same (seed, config) must yield
#: byte-identical source on every Python the CI matrix runs (3.9 and
#: 3.12 — ``random.Random`` is seed-stable across versions).  If a
#: deliberate generator change breaks these, regenerate the hashes and
#: say so in the changelog: every existing manifest's content shifts.
GOLDEN_SHA256 = {
    "mixed": "77178f5e8797f332973204cb8d9edde3"
             "7a1fa25ce164cdb42efa9e235d86aed1",
    "loopy": "a142e3e4be822b974b02b11ad23bcb65"
             "59833f6eb87b2c9e79faad0c5615425a",
    "branchy": "055acc08977d18952fbe0d37efeb0713"
               "7ee1a132c98b1bea6092ab9123686b7e",
}


class TestProfiles:
    def test_known_profiles(self):
        mixed = profile_config("mixed")
        loopy = profile_config("loopy")
        branchy = profile_config("branchy")
        assert loopy.loop_probability > mixed.loop_probability
        assert branchy.branch_probability > mixed.branch_probability
        assert branchy.loop_probability < loopy.loop_probability

    def test_size_knobs(self):
        config = profile_config("mixed", statements=30, max_depth=5)
        assert config.statements == 30
        assert config.max_depth == 5

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            profile_config("spaghetti")


class TestDeterminism:
    @pytest.mark.parametrize("profile", sorted(GOLDEN_SHA256))
    def test_source_bytes_pinned(self, profile):
        source = generate_source(7, profile_config(profile))
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_SHA256[profile], (
            f"generated source for seed 7/{profile} changed — every "
            f"existing manifest's content shifts with it"
        )

    def test_same_spec_same_source_and_fingerprint(self):
        config = profile_config("loopy", statements=16)
        first = generate_source(123, config)
        second = generate_source(123, config)
        assert first == second
        fp1 = cfg_fingerprint(load_generated(spec_payload(123, config)))
        fp2 = cfg_fingerprint(load_generated(spec_payload(123, config)))
        assert fp1 == fp2

    def test_different_seeds_differ(self):
        config = profile_config("mixed")
        sources = {generate_source(seed, config) for seed in range(8)}
        assert len(sources) == 8

    def test_loaded_cfg_matches_unparsed_source(self):
        # The generated item's CFG and the materialised .mini file must
        # describe the same program: lowering the unparsed source again
        # fingerprints identically.
        from repro.lang import compile_program

        config = profile_config("branchy")
        payload = spec_payload(9, config)
        direct = cfg_fingerprint(load_generated(payload))
        via_source = cfg_fingerprint(
            compile_program(generate_source(9, config))
        )
        assert direct == via_source


class TestSpecs:
    def test_payload_roundtrip(self):
        config = profile_config("loopy", statements=20)
        payload = spec_payload(42, config)
        seed, parsed = parse_spec(payload)
        assert seed == 42
        assert parsed == config

    def test_payload_is_canonical(self):
        config = profile_config("mixed")
        assert spec_payload(5, config) == spec_payload(5, config)
        # Compact separators + sorted keys: reordering on re-encode
        # cannot change the bytes (and thus the item fingerprinting).
        assert " " not in spec_payload(5, config)

    def test_config_dict_roundtrip(self):
        config = profile_config("branchy", statements=7)
        again = GeneratorConfig.from_dict(config.to_dict())
        assert again == config

    def test_config_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown generator config"):
            GeneratorConfig.from_dict({"statments": 5})

    def test_parse_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_spec("not json")
        with pytest.raises(ValueError, match="seed"):
            parse_spec(json.dumps({"config": {}}))
        with pytest.raises(ValueError, match="integer"):
            parse_spec(json.dumps({"seed": True}))

    def test_item_seed_tolerates_garbage(self):
        assert item_seed("not json") is None
        assert item_seed(spec_payload(3, GeneratorConfig())) == 3


class TestItems:
    def test_generated_items_shape(self):
        config = profile_config("mixed", statements=9)
        items = generated_items(range(3), config)
        assert [i.name for i in items] == [
            "gen-00000000", "gen-00000001", "gen-00000002",
        ]
        assert all(i.kind == KIND_GENERATED for i in items)
        assert all(i.cost == 9.0 for i in items)

    def test_prefix(self):
        items = generated_items([5], prefix="fuzz-")
        assert items[0].name == "fuzz-00000005"
        assert item_name(5, "fuzz-") == "fuzz-00000005"

    def test_seed_range(self):
        assert list(parse_seed_range("3:6")) == [3, 4, 5]
        with pytest.raises(ValueError, match="bad seed range"):
            parse_seed_range("17")
        with pytest.raises(ValueError, match="bad seed range"):
            parse_seed_range("a:b")
        with pytest.raises(ValueError, match="empty"):
            parse_seed_range("5:5")


class TestMaterialise:
    def test_write_and_regenerate_bit_identical(self, tmp_path):
        items = generated_items(range(6), profile_config("loopy"))
        first = tmp_path / "corpus"
        out = write_corpus(items, str(first))
        assert out["files"] == 6
        originals = {
            p.name: p.read_bytes() for p in first.glob("*.mini")
        }
        assert len(originals) == 6

        second = tmp_path / "regen"
        regenerate_corpus(out["manifest"], str(second))
        for path in second.glob("*.mini"):
            assert path.read_bytes() == originals[path.name], path.name
        assert (second / "manifest.ndjson").read_bytes() == (
            first / "manifest.ndjson"
        ).read_bytes()

    def test_write_corpus_rejects_non_generated(self, tmp_path):
        item = WorkItem("x", "source", "x = a + b;")
        with pytest.raises(ValueError, match="generated items"):
            write_corpus([item], str(tmp_path / "c"))

    def test_materialised_corpus_batch_loads(self, tmp_path):
        # The written directory is a valid batch corpus: the manifest
        # is skipped by the scan and each .mini file optimises to the
        # same fingerprint as its generated twin.
        from repro.batch import BatchConfig, run_batch
        from repro.corpus import load_corpus

        items = generated_items(range(4), profile_config("mixed"))
        out = write_corpus(items, str(tmp_path / "corpus"))
        on_disk = load_corpus(str(tmp_path / "corpus"))
        assert [i.name for i in on_disk] == [i.name for i in items]

        direct = run_batch(items, BatchConfig())
        from_files = run_batch(on_disk, BatchConfig())
        assert [i.fingerprint for i in direct.items] == [
            i.fingerprint for i in from_files.items
        ]
        assert out["files"] == 4
