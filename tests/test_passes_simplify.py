"""Unit tests for the CFG simplification pass."""

from tests.helpers import diamond

from repro.core.optimality import check_equivalence
from repro.ir.builder import CFGBuilder
from repro.ir.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.instr import CondBranch, Halt, Jump
from repro.ir.expr import Var
from repro.ir.validate import validate_cfg
from repro.passes.simplify import simplify_cfg


class TestBranchFolding:
    def test_constant_true_branch(self):
        b = CFGBuilder()
        b.block("c", "q = 9").branch("1", "t", "f")
        b.block("t", "x = 1").to_exit()
        b.block("f", "x = 2").to_exit()
        cfg = b.build()
        stats = simplify_cfg(cfg)
        assert stats.branches_folded == 1
        assert "f" not in cfg  # unreachable after folding
        # The taken arm is then linearly merged into c.
        assert [str(i) for i in cfg.block("c").instrs] == ["q = 9", "x = 1"]
        validate_cfg(cfg)

    def test_constant_false_branch(self):
        b = CFGBuilder()
        b.block("c", "q = 9").branch("0", "t", "f")
        b.block("t", "x = 1").to_exit()
        b.block("f", "x = 2").to_exit()
        cfg = b.build()
        simplify_cfg(cfg)
        assert "t" not in cfg
        assert [str(i) for i in cfg.block("c").instrs] == ["q = 9", "x = 2"]

    def test_variable_branch_untouched(self):
        cfg = diamond()
        stats = simplify_cfg(cfg)
        assert stats.branches_folded == 0
        assert len(cfg.succs("cond")) == 2


class TestPassThroughElision:
    def test_empty_jump_block_removed(self):
        b = CFGBuilder()
        b.block("a", "x = 1").jump("mid")
        b.block("mid").jump("b")
        b.block("b", "y = 2").to_exit()
        cfg = b.build()
        stats = simplify_cfg(cfg)
        assert stats.blocks_elided + stats.blocks_merged >= 2
        # The whole linear chain collapses into `a`.
        assert "mid" not in cfg
        assert "b" not in cfg
        assert [str(i) for i in cfg.block("a").instrs] == ["x = 1", "y = 2"]
        validate_cfg(cfg)

    def test_instruction_blocks_absorbed_not_elided(self):
        b = CFGBuilder()
        b.block("a", "x = 1").jump("mid")
        b.block("mid", "y = 2").jump("b")
        b.block("b", "z = 3").to_exit()
        cfg = b.build()
        stats = simplify_cfg(cfg)
        assert stats.blocks_elided == 0  # non-empty: merging, not elision
        assert stats.blocks_merged == 2
        assert "mid" not in cfg

    def test_diamond_with_empty_arm_collapses(self):
        cfg = diamond()  # right arm is empty
        before_blocks = len(cfg)
        stats = simplify_cfg(cfg)
        # right elided -> cond branches to (left, join).
        assert "right" not in cfg
        assert cfg.has_edge("cond", "join")
        assert len(cfg) == before_blocks - 1
        validate_cfg(cfg)

    def test_elision_then_fold_when_targets_merge(self):
        # Both arms empty, jumping to the same join: after eliding one
        # arm, the branch points at {arm2, join}; after the other, the
        # branch has two equal targets and must fold to a jump.
        b = CFGBuilder()
        b.block("c", "q = 9").branch("p", "a1", "a2")
        b.block("a1").jump("join")
        b.block("a2").jump("join")
        b.block("join", "x = 1").to_exit()
        cfg = b.build()
        stats = simplify_cfg(cfg)
        assert stats.branches_folded == 1
        # After folding, the join is c's sole successor and is absorbed.
        assert [str(i) for i in cfg.block("c").instrs] == ["q = 9", "x = 1"]
        assert "join" not in cfg
        validate_cfg(cfg)

    def test_self_loop_not_elided(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("entry", [], Jump("spin")))
        cfg.add_block(
            BasicBlock("spin", [], CondBranch(Var("p"), "spin", "exit"))
        )
        cfg.add_block(BasicBlock("exit", [], Halt()))
        simplify_cfg(cfg)
        assert "spin" in cfg


class TestLinearMerging:
    def test_chain_collapses_to_one_block(self):
        b = CFGBuilder()
        b.block("a", "x = 1").jump("b")
        b.block("b", "y = 2").jump("c")
        b.block("c", "z = 3").to_exit()
        cfg = b.build()
        stats = simplify_cfg(cfg)
        assert stats.blocks_merged == 2
        assert [str(i) for i in cfg.block("a").instrs] == [
            "x = 1", "y = 2", "z = 3",
        ]
        assert "b" not in cfg and "c" not in cfg
        validate_cfg(cfg)

    def test_join_not_absorbed(self):
        cfg = diamond()
        simplify_cfg(cfg)
        # join has two predecessors (cond's arms) — must survive.
        assert "join" in cfg

    def test_exit_never_absorbed(self):
        b = CFGBuilder()
        b.block("only", "x = 1").to_exit()
        cfg = b.build()
        simplify_cfg(cfg)
        assert cfg.exit in cfg
        assert cfg.block(cfg.exit).is_empty

    def test_entry_stays_empty(self):
        b = CFGBuilder()
        b.block("first", "x = 1").to_exit()
        cfg = b.build()
        simplify_cfg(cfg)
        assert cfg.block(cfg.entry).is_empty
        validate_cfg(cfg)

    def test_merge_preserves_semantics(self):
        b = CFGBuilder()
        b.block("a", "x = p + 1").jump("b")
        b.block("b", "y = x * 2").branch("y", "c", "d")
        b.block("c", "z = 1").jump("e")
        b.block("d", "z = 2").jump("e")
        b.block("e", "out = z + y").to_exit()
        cfg = b.build()
        snapshot = cfg.copy()
        simplify_cfg(cfg)
        validate_cfg(cfg)
        report = check_equivalence(snapshot, cfg, runs=25,
                                   compare_decisions=False)
        assert report.equivalent


class TestUnreachable:
    def test_unreachable_block_removed(self):
        cfg = diamond()
        cfg.add_block(BasicBlock("island", [], Jump("join")))
        stats = simplify_cfg(cfg)
        assert stats.unreachable_removed == 1
        assert "island" not in cfg

    def test_exit_never_removed(self):
        cfg = diamond()
        simplify_cfg(cfg)
        assert cfg.exit in cfg


class TestSemantics:
    def test_simplify_preserves_environment(self):
        b = CFGBuilder()
        b.block("c").branch("1", "t", "f")
        b.block("t", "x = a + b").jump("mid")
        b.block("mid").jump("end")
        b.block("f", "x = a - b").jump("end")
        b.block("end", "y = x + 1").to_exit()
        cfg = b.build()
        snapshot = cfg.copy()
        simplify_cfg(cfg)
        report = check_equivalence(
            snapshot, cfg, runs=25, compare_decisions=False
        )
        assert report.equivalent

    def test_idempotent(self):
        cfg = diamond()
        simplify_cfg(cfg)
        stats = simplify_cfg(cfg)
        assert stats.total == 0
