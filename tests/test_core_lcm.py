"""Unit tests for the edge-based LCM analysis.

Every expectation below is hand-derivable on the small graphs from
tests.helpers and repro.bench.figures; the running example's full
placement is the one documented in the figure's docstring.
"""

from tests.helpers import AB, diamond, do_while_invariant, straight_line

from repro.bench.figures import isolated_example, running_example
from repro.core.lcm import analyze_lcm, bcm_placements, lcm_placements
from repro.ir.expr import BinExpr, Var


def placement_for(placements, expr):
    return next(p for p in placements if p.expr == expr)


class TestDiamond:
    def test_insert_on_absent_arm_edge(self):
        analysis = analyze_lcm(diamond())
        plan = placement_for(lcm_placements(analysis), AB)
        assert plan.insert_edges == {("right", "join")}

    def test_delete_at_join(self):
        analysis = analyze_lcm(diamond())
        plan = placement_for(lcm_placements(analysis), AB)
        assert plan.delete_blocks == {"join"}

    def test_generator_not_deleted(self):
        analysis = analyze_lcm(diamond())
        plan = placement_for(lcm_placements(analysis), AB)
        assert "left" not in plan.delete_blocks

    def test_comparison_left_untouched(self):
        analysis = analyze_lcm(diamond())
        lt = BinExpr("<", Var("a"), Var("b"))
        plan = placement_for(lcm_placements(analysis), lt)
        assert plan.is_identity

    def test_bcm_inserts_at_earliest_point_above_branch(self):
        analysis = analyze_lcm(diamond())
        plan = placement_for(bcm_placements(analysis), AB)
        # a+b is down-safe all the way up: every path from cond reaches
        # either left (computes it) or join (computes it), so the
        # earliest point is the program entry edge.
        assert plan.insert_edges == {("entry", "cond")}
        assert plan.delete_blocks == {"left", "join"}


class TestFullRedundancy:
    def test_no_insertion_needed(self):
        cfg = straight_line(["x = a + b"], ["y = a + b"])
        plan = placement_for(lcm_placements(analyze_lcm(cfg)), AB)
        assert plan.insert_edges == set()
        assert plan.delete_blocks == {"s1"}


class TestLoopInvariant:
    def test_hoisted_to_loop_entry_edge(self):
        cfg = do_while_invariant()
        plan = placement_for(lcm_placements(analyze_lcm(cfg)), AB)
        assert plan.insert_edges == {("init", "body")}
        assert plan.delete_blocks == {"body", "after"}


class TestIsolation:
    def test_isolated_occurrence_untouched(self):
        cfg = isolated_example()
        analysis = analyze_lcm(cfg)
        for plan in lcm_placements(analysis):
            assert plan.is_identity, plan.describe()

    def test_busy_placement_moves_isolated_occurrence(self):
        cfg = isolated_example()
        analysis = analyze_lcm(cfg)
        plan = placement_for(bcm_placements(analysis), AB)
        assert plan.insert_edges == {("fork", "only")}
        assert plan.delete_blocks == {"only"}


class TestRunningExample:
    def test_full_lcm_placement_matches_hand_derivation(self):
        analysis = analyze_lcm(running_example())
        plan = placement_for(lcm_placements(analysis), AB)
        assert plan.insert_edges == {("n3", "n4"), ("n5", "n6"), ("n5", "n10")}
        assert plan.delete_blocks == {"n4", "n6", "n10"}

    def test_isolated_cd_untouched(self):
        analysis = analyze_lcm(running_example())
        cd = BinExpr("+", Var("c"), Var("d"))
        assert placement_for(lcm_placements(analysis), cd).is_identity

    def test_bcm_inserts_earlier(self):
        analysis = analyze_lcm(running_example())
        plan = placement_for(bcm_placements(analysis), AB)
        # Down-safety reaches the entry (both arms of n1 lead to a+b),
        # and the kill in n5 forces fresh earliest points below it.
        assert plan.insert_edges == {
            ("entry", "n1"),
            ("n5", "n6"),
            ("n5", "n10"),
        }
        assert plan.delete_blocks == {"n2", "n4", "n6", "n10"}

    def test_bcm_hoists_isolated_cd_above_loop(self):
        analysis = analyze_lcm(running_example())
        cd = BinExpr("+", Var("c"), Var("d"))
        plan = placement_for(bcm_placements(analysis), cd)
        # Busy placement drags c+d to its earliest down-safe point, the
        # loop-entry edge — computationally neutral but the temporary
        # stays live through the whole loop (the paper's motivation for
        # laziness).
        assert plan.insert_edges == {("n5", "n6")}
        assert plan.delete_blocks == {"n8"}


class TestAnalysisInternals:
    def test_laterin_holds_at_generator(self):
        analysis = analyze_lcm(diamond())
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.laterin["left"]
        assert idx not in analysis.laterin["join"]

    def test_earliest_empty_where_available(self):
        cfg = straight_line(["x = a + b"], ["y = a + b"])
        analysis = analyze_lcm(cfg)
        idx = analysis.universe.index_of(AB)
        assert idx not in analysis.earliest[("s0", "s1")]

    def test_earliest_at_entry_edge(self):
        cfg = straight_line(["x = a + b"])
        analysis = analyze_lcm(cfg)
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.earliest[("entry", "s0")]

    def test_insert_implies_later(self):
        analysis = analyze_lcm(running_example())
        for edge, ins in analysis.insert.items():
            assert ins.issubset(analysis.later[edge])

    def test_delete_implies_antloc(self):
        analysis = analyze_lcm(running_example())
        for label, dele in analysis.delete.items():
            assert dele.issubset(analysis.local.antloc[label])

    def test_stats_accumulated(self):
        analysis = analyze_lcm(running_example())
        assert analysis.stats.sweeps > 0
        assert analysis.stats.node_visits > 0
