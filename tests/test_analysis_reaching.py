"""Unit tests for reaching definitions and def-use chains."""

from tests.helpers import diamond, do_while_invariant, straight_line

from repro.analysis.reaching import (
    compute_reaching_definitions,
    def_use_chains,
)
from repro.ir.builder import CFGBuilder


class TestReachingDefinitions:
    def test_straightline_reaches_forward(self):
        cfg = straight_line(["x = a + b"], ["y = x + 1"])
        reaching = compute_reaching_definitions(cfg)
        assert ("s0", 0) in reaching.reaching_entry("s1")

    def test_redefinition_kills(self):
        cfg = straight_line(["x = a + b", "x = 5"], ["y = x + 1"])
        reaching = compute_reaching_definitions(cfg)
        entry_defs = reaching.reaching_entry("s1", var="x", cfg=cfg)
        assert entry_defs == [("s0", 1)]

    def test_join_merges_both_arms(self):
        b = CFGBuilder()
        b.block("top").branch("p", "l", "r")
        b.block("l", "x = 1").jump("join")
        b.block("r", "x = 2").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        reaching = compute_reaching_definitions(cfg)
        defs = set(reaching.reaching_entry("join", var="x", cfg=cfg))
        assert defs == {("l", 0), ("r", 0)}

    def test_loop_carried_definition(self):
        cfg = do_while_invariant()
        reaching = compute_reaching_definitions(cfg)
        # i's init (init block) and its in-loop increment both reach the
        # body's entry.
        defs = set(reaching.reaching_entry("body", var="i", cfg=cfg))
        assert ("init", 0) in defs
        assert any(b == "body" for b, _ in defs)

    def test_empty_program(self):
        cfg = CFGBuilder().build()
        reaching = compute_reaching_definitions(cfg)
        assert reaching.sites == []


class TestDefUseChains:
    def test_simple_chain(self):
        cfg = straight_line(["x = a + b", "y = x + 1"])
        chains = def_use_chains(cfg)
        assert chains.uses(("s0", 0)) == {("s0", 1)}
        assert chains.defs(("s0", 1), "x") == {("s0", 0)}

    def test_terminator_use_recorded(self):
        cfg = diamond()
        chains = def_use_chains(cfg)
        # p defined at cond[0], used by cond's terminator (index 1).
        assert ("cond", 1) in chains.uses(("cond", 0))

    def test_shadowed_def_has_no_uses(self):
        cfg = straight_line(["x = a + b", "x = 5", "y = x + 1"])
        chains = def_use_chains(cfg)
        assert chains.uses(("s0", 0)) == set()
        assert ("s0", 0) in chains.dead_defs()

    def test_multiple_reaching_defs_at_join(self):
        b = CFGBuilder()
        b.block("top").branch("p", "l", "r")
        b.block("l", "x = 1").jump("join")
        b.block("r", "x = 2").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        chains = def_use_chains(cfg)
        assert chains.defs(("join", 0), "x") == {("l", 0), ("r", 0)}
        assert ("join", 0) in chains.uses(("l", 0))
        assert ("join", 0) in chains.uses(("r", 0))

    def test_loop_use_of_own_definition(self):
        cfg = do_while_invariant()
        chains = def_use_chains(cfg)
        # i = i + 1 in the body uses both its own previous-iteration def
        # and the init.
        body_inc = next(
            (label, i)
            for label, i, instr in cfg.instructions()
            if label == "body" and instr.target == "i"
        )
        assert body_inc in chains.defs(body_inc, "i")

    def test_agrees_with_liveness_on_dead_defs(self):
        """Cross-oracle check: a def with no uses anywhere and a
        redefinition below is exactly what DCE removes."""
        from repro.passes.dce import dead_code_elimination

        cfg = straight_line(["x = a + b", "x = 5", "y = c * 2"])
        chains = def_use_chains(cfg)
        dead = chains.dead_defs()
        assert ("s0", 0) in dead
        removed = dead_code_elimination(cfg)
        assert removed == 1
