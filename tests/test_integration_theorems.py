"""Integration tests: the paper's theorems checked on whole programs.

These are the reproduction's core scientific assertions:

* T3 (safety): BCM/ALCM/LCM never evaluate a candidate more often than
  the original on any path;
* T1 (computational optimality): LCM evaluates exactly as often as BCM
  on every path, and no other safe strategy in the library evaluates
  less than LCM anywhere;
* T2 (lifetime optimality): LCM's temporary live ranges are within
  ALCM's, which are within BCM's;
* X1 (cross-check): the node-level formulation and the edge-based
  formulation produce path-for-path identical programs;
* semantic preservation for every strategy on every workload.
"""

import pytest

from repro.bench.figures import FIGURES
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.core.lifetime import measure_lifetimes
from repro.core.optimality import (
    check_equivalence,
    compare_per_path,
    paths_agree,
)
from repro.core.pipeline import optimize

SAFE_STRATEGIES = ("lcm", "bcm", "krs-lcm", "krs-alcm", "krs-bcm", "mr", "gcse")

WORKLOAD_SEEDS = list(range(12))


def workloads():
    graphs = [(name, fn()) for name, fn in sorted(FIGURES.items())]
    graphs += [
        (f"random-{seed}", random_cfg(seed, GeneratorConfig(statements=10)))
        for seed in WORKLOAD_SEEDS
    ]
    return graphs


WORKLOADS = workloads()
IDS = [name for name, _ in WORKLOADS]
GRAPHS = [cfg for _, cfg in WORKLOADS]


class TestSafety:
    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    @pytest.mark.parametrize("strategy", SAFE_STRATEGIES)
    def test_no_path_evaluates_more(self, cfg, strategy):
        result = optimize(cfg, strategy)
        report = compare_per_path(cfg, result.cfg, max_branches=7)
        assert report.safe, report.safety_violations[:3]


class TestSemanticPreservation:
    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    @pytest.mark.parametrize("strategy", SAFE_STRATEGIES + ("licm",))
    def test_equivalent_results(self, cfg, strategy):
        result = optimize(cfg, strategy)
        report = check_equivalence(cfg, result.cfg, runs=15)
        assert report.equivalent, report.mismatches[:3]


class TestComputationalOptimality:
    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    def test_lcm_matches_bcm_on_every_path(self, cfg):
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        assert paths_agree(lcm.cfg, bcm.cfg, max_branches=7)

    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    @pytest.mark.parametrize("competitor", ("mr", "gcse", "none"))
    def test_nothing_safe_beats_lcm(self, cfg, competitor):
        lcm = optimize(cfg, "lcm")
        other = optimize(cfg, competitor)
        head_to_head = compare_per_path(lcm.cfg, other.cfg, max_branches=7)
        assert head_to_head.improvements == 0, (
            f"{competitor} beat LCM on {head_to_head.improvements} paths"
        )


class TestLifetimeOptimality:
    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    def test_lcm_at_most_alcm_at_most_bcm(self, cfg):
        spans = {}
        for strategy in ("krs-lcm", "krs-alcm", "krs-bcm"):
            result = optimize(cfg, strategy)
            spans[strategy] = measure_lifetimes(
                result.cfg, result.temps
            ).total_live_points
        assert spans["krs-lcm"] <= spans["krs-alcm"] <= spans["krs-bcm"]

    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    def test_edge_lcm_at_most_edge_bcm(self, cfg):
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        lcm_span = measure_lifetimes(lcm.cfg, lcm.temps).total_live_points
        bcm_span = measure_lifetimes(bcm.cfg, bcm.temps).total_live_points
        assert lcm_span <= bcm_span


class TestCrossCheck:
    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    def test_node_level_and_edge_level_agree_per_path(self, cfg):
        edge = optimize(cfg, "lcm")
        node = optimize(cfg, "krs-lcm")
        assert paths_agree(edge.cfg, node.cfg, max_branches=7)

    @pytest.mark.parametrize("cfg", GRAPHS, ids=IDS)
    def test_bcm_formulations_agree_per_path(self, cfg):
        edge = optimize(cfg, "bcm")
        node = optimize(cfg, "krs-bcm")
        assert paths_agree(edge.cfg, node.cfg, max_branches=7)
