"""Cross-cutting properties: interactions between subsystems.

Each property ties two components together (canonicalisation × PRE,
serialisation × optimisation, sinking × PRE, profiles × interpreter),
catching integration drift the per-module tests cannot see.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.frequency import check_conservation, profile_from_runs
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.core.optimality import compare_per_path, enumerate_traces, replay
from repro.core.pipeline import optimize
from repro.extensions.sinking import sink_assignments
from repro.interp.random_inputs import random_envs
from repro.ir.serialize import cfg_from_json, cfg_to_json
from repro.passes.canonical import canonicalize

quick = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
seeds = st.integers(min_value=0, max_value=10_000)
SMALL = GeneratorConfig(statements=8, max_depth=2)


class TestInterplay:
    @quick
    @given(seeds)
    def test_canonicalisation_never_hurts_pre(self, seed):
        """LCM on the canonicalised program is at most as costly per
        path as LCM on the raw program (it can only merge candidates)."""
        raw = random_cfg(seed, SMALL)
        canon = raw.copy()
        canonicalize(canon)
        raw_opt = optimize(raw, "lcm")
        canon_opt = optimize(canon, "lcm")
        for trace in enumerate_traces(raw_opt.cfg, 6):
            after = replay(canon_opt.cfg, trace.decisions)
            assert after.total <= trace.total

    @quick
    @given(seeds)
    def test_optimised_graphs_survive_serialisation(self, seed):
        """Optimise, serialise, deserialise: the result still matches
        the original program path-for-path."""
        cfg = random_cfg(seed, SMALL)
        optimised = optimize(cfg, "lcm").cfg
        revived = cfg_from_json(cfg_to_json(optimised))
        for trace in enumerate_traces(optimised, 6):
            assert replay(revived, trace.decisions).eval_counts == trace.eval_counts

    @quick
    @given(seeds)
    def test_pre_then_sinking_still_safe(self, seed):
        cfg = random_cfg(seed, SMALL)
        pre = optimize(cfg, "lcm")
        composed, _ = sink_assignments(pre.cfg)
        report = compare_per_path(cfg, composed.cfg, max_branches=6)
        assert report.safe

    @quick
    @given(seeds)
    def test_profiles_always_conserve_flow(self, seed):
        """Edge counts from real executions satisfy Assumption 1 at
        every block all of whose edges were observed."""
        cfg = random_cfg(seed, SMALL)
        profile = profile_from_runs(cfg, random_envs(cfg, 4, seed=seed))
        profile.attach(minimum=0)
        # Blocks with unobserved edges use weight 0 via default=0, so
        # conservation must hold exactly.
        assert check_conservation(cfg, default=0) == []

    @quick
    @given(seeds)
    def test_profile_totals_match_interpreter(self, seed):
        """The profile's block counts equal the interpreter's own
        per-run block trace counts summed over the runs."""
        from repro.interp.machine import run

        cfg = random_cfg(seed, SMALL)
        envs = random_envs(cfg, 3, seed=seed)
        profile = profile_from_runs(cfg, envs)
        expected = {}
        for env in envs:
            for label, n in run(cfg, env).block_counts().items():
                expected[label] = expected.get(label, 0) + n
        for label in cfg.labels:
            if label == cfg.entry:
                continue
            assert profile.block(label) == expected.get(label, 0), label
