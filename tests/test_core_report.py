"""Tests for the optimisation report generator and its CLI hook."""

import io

from tests.helpers import diamond, do_while_invariant

from repro.cli import main
from repro.core.report import optimization_report


class TestReport:
    def test_sections_present(self):
        text = optimization_report(diamond())
        for section in (
            "candidate expressions",
            "placements",
            "metrics",
            "verification",
            "verdict   : OK",
        ):
            assert section in text

    def test_expression_rows(self):
        text = optimization_report(diamond())
        assert "a + b" in text
        assert "a < b" in text
        assert "leave in place" in text  # the comparison is isolated

    def test_title_override(self):
        text = optimization_report(diamond(), title="my kernel")
        assert text.startswith("my kernel\n=========")

    def test_strategy_selectable(self):
        text = optimization_report(do_while_invariant(), strategy="bcm")
        assert "bcm" not in text or True  # strategy affects plan, not header
        assert "insert" in text

    def test_verify_optional(self):
        text = optimization_report(diamond(), verify=False)
        assert "verification" not in text

    def test_metrics_reflect_change(self):
        text = optimization_report(do_while_invariant())
        assert "static computations" in text
        assert "temp live points" in text


class TestCliFullAudit(object):
    def test_audit_full(self, tmp_path):
        path = tmp_path / "p.mini"
        path.write_text("x = a + b;\ny = a + b;\n")
        out = io.StringIO()
        code = main(["audit", str(path), "--full"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "candidate expressions" in text
        assert "verdict   : OK" in text

    def test_audit_full_with_strategy(self, tmp_path):
        path = tmp_path / "p.mini"
        path.write_text("x = a + b;\ny = a + b;\n")
        out = io.StringIO()
        code = main(["audit", str(path), "--full", "--strategy", "gcse"], out=out)
        assert code == 0
