"""Unit tests for the Placement plan objects."""

import pytest

from tests.helpers import AB, diamond

from repro.core.placement import (
    Placement,
    PlacementError,
    upward_exposed_index,
)
from repro.ir.builder import CFGBuilder
from repro.ir.expr import Var


class TestConstruction:
    def test_make_freezes_sets(self):
        plan = Placement.make(AB, "t", insert_edges=[("a", "b")])
        assert plan.insert_edges == frozenset({("a", "b")})

    def test_make_rejects_non_computation(self):
        with pytest.raises(PlacementError):
            Placement.make(Var("x"), "t")  # type: ignore[arg-type]

    def test_identity(self):
        assert Placement.make(AB, "t").is_identity
        assert not Placement.make(AB, "t", delete_blocks=["join"]).is_identity

    def test_insertion_count(self):
        plan = Placement.make(
            AB, "t", insert_edges=[("a", "b")], insert_entries=["c"],
            insert_exits=["d"],
        )
        assert plan.insertion_count == 3

    def test_describe_mentions_everything(self):
        plan = Placement.make(
            AB, "t", insert_edges=[("m", "n")], delete_blocks=["join"]
        )
        text = plan.describe()
        assert "m->n" in text and "join" in text

    def test_describe_identity(self):
        assert "no change" in Placement.make(AB, "t").describe()


class TestValidation:
    def test_valid_plan_passes(self):
        plan = Placement.make(
            AB, "t", insert_edges=[("right", "join")], delete_blocks=["join"]
        )
        plan.validate_against(diamond())

    def test_missing_edge_rejected(self):
        plan = Placement.make(AB, "t", insert_edges=[("left", "right")])
        with pytest.raises(PlacementError, match="missing edge"):
            plan.validate_against(diamond())

    def test_missing_block_rejected(self):
        plan = Placement.make(AB, "t", insert_entries=["ghost"])
        with pytest.raises(PlacementError, match="missing block"):
            plan.validate_against(diamond())

    def test_delete_without_upward_exposed_occurrence_rejected(self):
        plan = Placement.make(AB, "t", delete_blocks=["right"])
        with pytest.raises(PlacementError, match="upwards-exposed"):
            plan.validate_against(diamond())

    def test_delete_killed_occurrence_rejected(self):
        b = CFGBuilder()
        b.block("s", "a = 1", "x = a + b").to_exit()
        cfg = b.build()
        plan = Placement.make(AB, "t", delete_blocks=["s"])
        with pytest.raises(PlacementError):
            plan.validate_against(cfg)


class TestUpwardExposedIndex:
    def test_finds_first_occurrence(self):
        b = CFGBuilder()
        b.block("s", "q = c * 2", "x = a + b").to_exit()
        cfg = b.build()
        assert upward_exposed_index(cfg, "s", AB) == 1

    def test_stops_at_kill(self):
        b = CFGBuilder()
        b.block("s", "a = 1", "x = a + b").to_exit()
        cfg = b.build()
        with pytest.raises(PlacementError):
            upward_exposed_index(cfg, "s", AB)

    def test_self_kill_occurrence_is_upward_exposed(self):
        b = CFGBuilder()
        b.block("s", "a = a + b").to_exit()
        cfg = b.build()
        assert upward_exposed_index(cfg, "s", AB) == 0
