"""Tests for deterministic sharding and shard-report merging."""

import json

import pytest

from repro.batch import (
    BatchConfig,
    WorkItem,
    merge_report_dicts,
    run_batch,
    shard_items,
    shard_of,
    stable_hash,
    stable_report_json,
)
from repro.corpus import generated_items, profile_config


def _corpus(count=12):
    return generated_items(range(count), profile_config("mixed"))


def _sharded_reports(items, total, **config):
    """Per-shard report dicts with CLI-style index remap + shard block."""
    positions = {item.name: i for i, item in enumerate(items)}
    reports = []
    for index in range(total):
        shard = shard_items(items, index, total)
        report = run_batch(shard, BatchConfig(**config))
        for record in report.items:
            record.index = positions[record.name]
        report.shard = {
            "index": index + 1,
            "total": total,
            "universe": len(items),
        }
        reports.append(report.to_dict())
    return reports


class TestPartition:
    def test_stable_hash_is_content_addressed(self):
        # Not Python's hash(): the value must be identical across
        # processes, platforms and interpreter versions.
        assert stable_hash("gen-00000000") == stable_hash("gen-00000000")
        assert stable_hash("a") != stable_hash("b")
        assert shard_of("gen-00000003", 3) == \
            stable_hash("gen-00000003") % 3

    def test_disjoint_and_complete(self):
        items = _corpus(20)
        shards = [shard_items(items, i, 3) for i in range(3)]
        names = [item.name for shard in shards for item in shard]
        assert sorted(names) == sorted(item.name for item in items)
        assert len(names) == len(set(names))

    def test_membership_ignores_list_order(self):
        # Hash-of-name partitioning: shuffling the corpus cannot move
        # an item to a different shard (list-position partitioning
        # would break merges whenever two runs sorted differently).
        items = _corpus(16)
        flipped = list(reversed(items))
        for index in range(4):
            direct = {i.name for i in shard_items(items, index, 4)}
            shuffled = {i.name for i in shard_items(flipped, index, 4)}
            assert direct == shuffled

    def test_membership_survives_insertions(self):
        items = _corpus(10)
        grown = items + generated_items(range(10, 12))
        for index in range(3):
            before = {i.name for i in shard_items(items, index, 3)}
            after = {i.name for i in shard_items(grown, index, 3)}
            assert before <= after

    def test_single_shard_is_identity(self):
        items = _corpus(5)
        assert shard_items(items, 0, 1) == items

    def test_bad_indices(self):
        items = _corpus(4)
        with pytest.raises(ValueError, match="shard count"):
            shard_items(items, 0, 0)
        with pytest.raises(ValueError, match="out of range"):
            shard_items(items, 3, 3)
        with pytest.raises(ValueError, match="out of range"):
            shard_items(items, -1, 3)


class TestMerge:
    def test_merge_matches_unsharded_byte_for_byte(self):
        items = _corpus(15)
        full = run_batch(items, BatchConfig()).to_dict()
        merged = merge_report_dicts(_sharded_reports(items, 3))
        assert stable_report_json(merged) == stable_report_json(full)

    def test_merge_drops_shard_block_and_sums_walltime(self):
        items = _corpus(9)
        reports = _sharded_reports(items, 3)
        merged = merge_report_dicts(reports)
        assert "shard" not in merged
        assert merged["items_total"] == 9
        assert merged["wall_time_s"] == round(
            sum(r["wall_time_s"] for r in reports), 6
        )

    def test_merge_single_report_roundtrips(self):
        items = _corpus(6)
        full = run_batch(items, BatchConfig()).to_dict()
        merged = merge_report_dicts([json.loads(json.dumps(full))])
        assert stable_report_json(merged) == stable_report_json(full)

    def test_merge_rejects_mixed_configs(self):
        items = _corpus(6)
        a = run_batch(items[:3], BatchConfig(pass_="lcm")).to_dict()
        b = run_batch(items[3:], BatchConfig(pass_="bcm")).to_dict()
        with pytest.raises(ValueError, match="pass="):
            merge_report_dicts([a, b])

    def test_merge_rejects_overlap(self):
        items = _corpus(6)
        report = _sharded_reports(items, 2)[0]
        twin = json.loads(json.dumps(report))
        with pytest.raises(ValueError, match="overlapping shards"):
            merge_report_dicts([report, twin])

    def test_merge_rejects_incomplete(self):
        items = _corpus(9)
        reports = _sharded_reports(items, 3)
        with pytest.raises(ValueError, match="incomplete merge"):
            merge_report_dicts(reports[:2])

    def test_merge_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a"):
            merge_report_dicts([{"format": "something-else"}])
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_report_dicts([])

    def test_failures_survive_merge(self):
        items = _corpus(5)
        items.append(WorkItem("broken", "source", "x = ; nope"))
        full = run_batch(items, BatchConfig()).to_dict()
        merged = merge_report_dicts(_sharded_reports(items, 2))
        assert merged["tally"] == full["tally"]
        assert merged["tally"]["error"] == 1
        assert stable_report_json(merged) == stable_report_json(full)


class TestNormalisation:
    def test_strips_only_timing(self):
        items = _corpus(3)
        report = run_batch(items, BatchConfig()).to_dict()
        stable = json.loads(stable_report_json(report))
        assert "wall_time_s" not in stable
        assert all("duration_ms" not in i for i in stable["items"])
        assert all(
            "total_ms" not in entry
            for entry in stable["summary"].values()
        )
        # Everything that identifies the run's *results* survives.
        assert stable["tally"] == report["tally"]
        assert [i["fingerprint"] for i in stable["items"]] == [
            i["fingerprint"] for i in report["items"]
        ]
