"""Shared graph builders and assertion helpers for the test-suite."""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.dataflow.bitvec import BitVector
from repro.ir.builder import CFGBuilder
from repro.ir.cfg import CFG
from repro.ir.expr import BinExpr, Var


AB = BinExpr("+", Var("a"), Var("b"))
CD = BinExpr("+", Var("c"), Var("d"))


def diamond() -> CFG:
    """cond -> (left computes a+b | right empty) -> join computes a+b."""
    b = CFGBuilder()
    b.block("cond", "p = a < b").branch("p", "left", "right")
    b.block("left", "x = a + b").jump("join")
    b.block("right").jump("join")
    b.block("join", "y = a + b").to_exit()
    return b.build()


def straight_line(*instr_groups: Iterable[str]) -> CFG:
    """A chain of blocks s0 -> s1 -> ... with the given instructions."""
    b = CFGBuilder()
    labels = [f"s{i}" for i in range(len(instr_groups))]
    for i, instrs in enumerate(instr_groups):
        handle = b.block(labels[i], *instrs)
        if i + 1 < len(labels):
            handle.jump(labels[i + 1])
        else:
            handle.to_exit()
    return b.build()


def do_while_invariant() -> CFG:
    """init -> body[z=a+b] <-> body (do-while), then after[w=a+b]."""
    b = CFGBuilder()
    b.block("init", "i = 0").jump("body")
    b.block("body", "z = a + b", "i = i + 1", "t = i < n").branch(
        "t", "body", "after"
    )
    b.block("after", "w = a + b").to_exit()
    return b.build()


def full_redundancy() -> CFG:
    """first computes a+b; second recomputes it (fully redundant)."""
    return straight_line(["x = a + b"], ["y = a + b"])


def names(vec_map: Dict[str, BitVector], index: int) -> Set[str]:
    """The labels whose vector has bit *index* set."""
    return {label for label, vec in vec_map.items() if index in vec}
