"""Unit tests for the global analyses: availability, anticipability,
their partial (some-path) variants, and variable liveness."""

from tests.helpers import AB, diamond, do_while_invariant, straight_line

from repro.analysis.anticipability import compute_anticipability
from repro.analysis.availability import compute_availability
from repro.analysis.liveness import compute_liveness
from repro.analysis.local import compute_local_properties
from repro.analysis.partial import (
    compute_partial_anticipability,
    compute_partial_availability,
)
from repro.ir.builder import CFGBuilder


def analyses(cfg):
    local = compute_local_properties(cfg)
    return local, local.universe.index_of(AB)


class TestAvailability:
    def test_available_after_computing_block(self):
        cfg = straight_line(["x = a + b"], ["y = c + c"], ["z = a + b"])
        local, idx = analyses(cfg)
        av = compute_availability(cfg, local)
        assert idx in av.avout["s0"]
        assert idx in av.avin["s2"]

    def test_join_requires_all_paths(self):
        cfg = diamond()
        local, idx = analyses(cfg)
        av = compute_availability(cfg, local)
        assert idx in av.avout["left"]
        assert idx not in av.avout["right"]
        assert idx not in av.avin["join"]

    def test_loop_carries_availability(self):
        cfg = do_while_invariant()
        local, idx = analyses(cfg)
        av = compute_availability(cfg, local)
        assert idx in av.avin["after"]
        # Entry of the loop body: available only from the back edge, not
        # the initial entry -> not available (intersection).
        assert idx not in av.avin["body"]

    def test_nothing_available_at_entry(self):
        cfg = diamond()
        local, _ = analyses(cfg)
        av = compute_availability(cfg, local)
        assert not av.avin[cfg.entry]


class TestAnticipability:
    def test_upward_exposed_blocks_anticipate(self):
        cfg = diamond()
        local, idx = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        assert idx in ant.antin["join"]
        assert idx in ant.antin["left"]

    def test_branch_requires_all_paths(self):
        # a+b computed only on one branch arm: not anticipatable above
        # the branch.
        b = CFGBuilder()
        b.block("fork").branch("p", "uses", "skips")
        b.block("uses", "x = a + b").jump("end")
        b.block("skips").jump("end")
        b.block("end").to_exit()
        cfg = b.build()
        local, idx = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        assert idx not in ant.antout["fork"]
        assert idx in ant.antin["uses"]

    def test_both_arms_make_it_anticipatable(self):
        cfg = diamond()
        local, idx = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        # join computes on all paths below cond... via left (computes)
        # and right (transparent, join computes).
        assert idx in ant.antout["cond"]

    def test_kill_blocks_anticipation(self):
        cfg = straight_line(["a = 5"], ["x = a + b"])
        local, idx = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        assert idx in ant.antin["s1"]
        assert idx not in ant.antin["s0"]  # s0 kills a first

    def test_nothing_anticipated_at_exit(self):
        cfg = diamond()
        local, _ = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        assert not ant.antout[cfg.exit]


class TestPartialProperties:
    def test_partial_availability_some_path(self):
        cfg = diamond()
        local, idx = analyses(cfg)
        pav = compute_partial_availability(cfg, local)
        # Available on the left path only: partial availability holds at
        # the join even though full availability does not.
        assert idx in pav.inof["join"]

    def test_partial_subsumes_full(self):
        cfg = do_while_invariant()
        local, _ = analyses(cfg)
        av = compute_availability(cfg, local)
        pav = compute_partial_availability(cfg, local)
        for label in cfg.labels:
            assert av.avin[label].issubset(pav.inof[label])

    def test_partial_anticipability_some_path(self):
        b = CFGBuilder()
        b.block("fork").branch("p", "uses", "skips")
        b.block("uses", "x = a + b").jump("end")
        b.block("skips").jump("end")
        b.block("end").to_exit()
        cfg = b.build()
        local, idx = analyses(cfg)
        pant = compute_partial_anticipability(cfg, local)
        assert idx in pant.outof["fork"]  # some path computes it

    def test_partial_anticipability_subsumes_full(self):
        cfg = diamond()
        local, _ = analyses(cfg)
        ant = compute_anticipability(cfg, local)
        pant = compute_partial_anticipability(cfg, local)
        for label in cfg.labels:
            assert ant.antin[label].issubset(pant.inof[label])


class TestLiveness:
    def test_straightline_liveness(self):
        cfg = straight_line(["x = a + b"], ["y = x + 1"])
        live = compute_liveness(cfg)
        assert "x" in live.live_in("s1")
        assert "x" not in live.live_in("s0")  # defined there, not used before
        assert "a" in live.live_in("s0")

    def test_branch_condition_consumed_within_block(self):
        cfg = diamond()
        live = compute_liveness(cfg)
        # p is defined in cond and used only by cond's own terminator:
        # live neither on entry (defined before use) nor on exit (no
        # successor reads it).
        assert not live.is_live_in("cond", "p")
        assert not live.is_live_out("cond", "p")

    def test_branch_condition_live_when_defined_earlier(self):
        b = CFGBuilder()
        b.block("setup", "p = a < b").jump("fork")
        b.block("fork").branch("p", "t", "f")
        b.block("t").to_exit()
        b.block("f").to_exit()
        cfg = b.build()
        live = compute_liveness(cfg)
        assert live.is_live_out("setup", "p")
        assert live.is_live_in("fork", "p")

    def test_dead_result_not_live(self):
        cfg = straight_line(["x = a + b"])
        live = compute_liveness(cfg)
        assert not live.is_live_out("s0", "x")

    def test_loop_keeps_variable_alive(self):
        cfg = do_while_invariant()
        live = compute_liveness(cfg)
        assert live.is_live_out("body", "i")  # used next iteration
        assert live.is_live_in("body", "n")

    def test_unknown_variable_queries_are_false(self):
        cfg = diamond()
        live = compute_liveness(cfg)
        assert not live.is_live_in("join", "nope")
        assert not live.is_live_out("join", "nope")
