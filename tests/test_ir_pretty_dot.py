"""Unit tests for rendering (pretty printer and DOT export)."""

from tests.helpers import diamond

from repro.ir.dot import cfg_to_dot
from repro.ir.pretty import facts_annotator, pretty_block, pretty_cfg


class TestPretty:
    def test_pretty_block_contains_instrs_and_terminator(self):
        text = pretty_block(diamond().block("left"))
        assert "left:" in text
        assert "x = a + b" in text
        assert "goto join" in text

    def test_pretty_block_annotations(self):
        text = pretty_block(diamond().block("left"), annotations=["DSAFE = yes"])
        assert ";; DSAFE = yes" in text

    def test_pretty_cfg_lists_all_blocks(self):
        text = pretty_cfg(diamond())
        for label in ("entry", "exit", "cond", "left", "right", "join"):
            assert f"{label}:" in text

    def test_pretty_cfg_deterministic(self):
        assert pretty_cfg(diamond()) == pretty_cfg(diamond())

    def test_facts_annotator(self):
        annotate = facts_annotator({"AVIN": {"join": "{a+b}"}})
        assert list(annotate("join")) == ["AVIN = {a+b}"]
        assert list(annotate("left")) == []


class TestDot:
    def test_dot_structure(self):
        dot = cfg_to_dot(diamond())
        assert dot.startswith("digraph")
        assert '"cond" -> "left"' in dot
        assert '"left" -> "join"' in dot

    def test_dot_highlights(self):
        dot = cfg_to_dot(
            diamond(),
            highlight_blocks={"join"},
            highlight_edges={("right", "join")},
        )
        assert dot.count("color=red") == 2

    def test_dot_escapes_quotes(self):
        dot = cfg_to_dot(diamond())
        assert "\\l" in dot

    def test_dot_annotations(self):
        dot = cfg_to_dot(diamond(), annotate=lambda lbl: ["note"] if lbl == "join" else [])
        assert ";; note" in dot
