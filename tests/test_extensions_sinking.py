"""Unit tests for partial dead-code elimination (assignment sinking)."""

from tests.helpers import straight_line

from repro.core.optimality import check_equivalence, compare_per_path
from repro.extensions.sinking import sink_assignments
from repro.ir.builder import CFGBuilder
from repro.ir.validate import validate_cfg


def partially_dead():
    """x = a*b is overwritten on the right arm before any use."""
    b = CFGBuilder()
    b.block("top", "x = a * b").branch("p", "uses", "kills")
    b.block("uses", "y = x + 1").jump("end")
    b.block("kills", "x = 7").jump("end")
    b.block("end", "out = x + y").to_exit()
    return b.build()


class TestSinking:
    def test_partially_dead_assignment_sunk(self):
        cfg = partially_dead()
        result, report = sink_assignments(cfg)
        assert report.sunk
        block, instr, targets = report.sunk[0]
        assert block == "top"
        assert instr == "x = a * b"
        assert targets == ("uses",)
        # The kills arm no longer computes a*b.
        validate_cfg(result.cfg)
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_dead_arm_path_gets_cheaper(self):
        cfg = partially_dead()
        result, _ = sink_assignments(cfg)
        report = compare_per_path(cfg, result.cfg, max_branches=4)
        assert report.safe  # never more evaluations (the PDE guarantee)
        assert report.improvements >= 1  # strictly fewer on the dead arm

    def test_fully_dead_assignment_removed(self):
        b = CFGBuilder()
        b.block("top", "x = a * b").branch("p", "l", "r")
        b.block("l", "x = 1").jump("end")
        b.block("r", "x = 2").jump("end")
        b.block("end", "out = x + 1").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        assert report.removed
        assert check_equivalence(cfg, result.cfg, runs=20).equivalent
        assert compare_per_path(cfg, result.cfg).improvements >= 1

    def test_live_everywhere_untouched(self):
        b = CFGBuilder()
        b.block("top", "x = a * b").branch("p", "l", "r")
        b.block("l", "y = x + 1").jump("end")
        b.block("r", "z = x + 2").jump("end")
        b.block("end").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        assert report.actions == 0
        assert str(result.cfg) == str(cfg)

    def test_observable_final_value_blocks_removal(self):
        # x's final value is observable and the right arm does NOT
        # overwrite it: x stays live there, so the assignment must be
        # kept on that arm.
        b = CFGBuilder()
        b.block("top", "x = a * b").branch("p", "l", "r")
        b.block("l", "x = 1").jump("end")
        b.block("r", "q = c + d").jump("end")
        b.block("end").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        if report.sunk:
            # Sinking may still specialise the arms, but never drop the
            # value on the path where it survives to the exit.
            pass
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_terminator_use_blocks_sinking(self):
        b = CFGBuilder()
        b.block("top", "p = a < b").branch("p", "l", "r")
        b.block("l", "p = 0").jump("end")
        b.block("r", "y = 1").jump("end")
        b.block("end").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        assert report.actions == 0

    def test_chain_sinks_over_multiple_rounds(self):
        # Two stacked partially dead assignments: the lower one sinks
        # first, then the upper becomes the block's last and follows.
        b = CFGBuilder()
        b.block("top", "u = a * b", "v = c * d").branch("p", "needs", "kills")
        b.block("needs", "s = u + v").jump("end")
        b.block("kills", "u = 1", "v = 2").jump("end")
        b.block("end", "out = u + v").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        assert len(report.sunk) == 2
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent
        per_path = compare_per_path(cfg, result.cfg, max_branches=4)
        assert per_path.safe and per_path.improvements >= 1

    def test_split_used_when_live_successor_is_a_join(self):
        # `shared` (the live successor) has two predecessors, so the
        # sunk assignment must land on a split block of the edge
        # top -> shared, not at shared's entry.
        b = CFGBuilder()
        b.block("pre", "q = c + 1").branch("s", "top", "other")
        b.block("top", "x = a * b").branch("p", "shared", "kills")
        b.block("other").jump("shared")
        b.block("kills", "x = 7").jump("end")
        b.block("shared", "y = x + 1").jump("end")
        b.block("end", "out = x + y").to_exit()
        cfg = b.build()
        result, report = sink_assignments(cfg)
        assert report.sunk
        block, _, targets = report.sunk[0]
        assert block == "top"
        assert all(t.startswith("sink_") for t in targets)
        assert check_equivalence(cfg, result.cfg, runs=25).equivalent

    def test_straight_line_untouched(self):
        cfg = straight_line(["x = a + b", "y = x + 1"])
        result, report = sink_assignments(cfg)
        assert report.actions == 0

    def test_input_not_mutated(self):
        cfg = partially_dead()
        before = str(cfg)
        sink_assignments(cfg)
        assert str(cfg) == before

    def test_random_programs_preserved(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(10):
            cfg = random_cfg(seed, GeneratorConfig(statements=10))
            result, _ = sink_assignments(cfg)
            validate_cfg(result.cfg)
            assert check_equivalence(cfg, result.cfg, runs=10).equivalent, seed
            assert compare_per_path(cfg, result.cfg, max_branches=6).safe, seed

    def test_unstructured_graphs_preserved(self):
        from repro.bench.shapegen import ShapeConfig, random_shape_cfg
        from repro.core.optimality import enumerate_traces
        from repro.interp.machine import run

        for seed in range(10):
            cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
            result, _ = sink_assignments(cfg)
            validate_cfg(result.cfg)
            for trace in enumerate_traces(cfg, 5):
                before = run(cfg, decisions=trace.decisions)
                after = run(result.cfg, decisions=trace.decisions)
                assert after.reached_exit
                for name in cfg.variables():
                    assert before.env.get(name, 0) == after.env.get(name, 0), (
                        seed, name
                    )
