"""Unit tests for constant folding/propagation and whole-program DCE."""

from tests.helpers import straight_line

from repro.core.optimality import check_equivalence
from repro.ir.builder import CFGBuilder
from repro.ir.expr import Const, Var
from repro.ir.instr import CondBranch
from repro.passes.constfold import fold_constants
from repro.passes.dce import dead_code_elimination


class TestFolding:
    def test_literal_fold(self):
        cfg = straight_line(["x = 2 * 3"])
        assert fold_constants(cfg) == 1
        assert cfg.block("s0").instrs[0].expr == Const(6)

    def test_propagation_then_fold(self):
        cfg = straight_line(["x = 4", "y = x * 2"])
        fold_constants(cfg)
        assert cfg.block("s0").instrs[1].expr == Const(8)

    def test_fold_agrees_with_runtime_on_negative_remainder(self):
        # Folding goes through the interpreter's eval_expr, so the
        # compile-time value of -7 % 2 must be the truncated -1 (C
        # semantics), never Python's +1.
        cfg = straight_line(["x = 0 - 7", "y = x % 2", "z = x / 2"])
        fold_constants(cfg)
        instrs = cfg.block("s0").instrs
        assert instrs[1].expr == Const(-1)
        assert instrs[2].expr == Const(-3)

    def test_fold_agrees_with_runtime_on_shifts(self):
        # Folding goes through eval_expr, so compile-time shifts use
        # the same mod-64/arithmetic convention as the interpreter
        # (docs/LANGUAGE.md): 1 << 67 folds to 8, and -8 >> 1 stays
        # sign-preserving.
        cfg = straight_line(["x = 1 << 67", "y = 0 - 8", "z = y >> 1"])
        fold_constants(cfg)
        instrs = cfg.block("s0").instrs
        assert instrs[0].expr == Const(8)
        assert instrs[2].expr == Const(-4)

    def test_input_variables_not_assumed(self):
        cfg = straight_line(["y = a * 2"])  # a is an input
        assert fold_constants(cfg) == 0

    def test_initial_value_respected_at_partial_assignment(self):
        # x is set to 5 on one arm only; at the join x is not constant
        # (the other path keeps x's input value).
        b = CFGBuilder()
        b.block("top").branch("p", "set", "skip")
        b.block("set", "x = 5").jump("join")
        b.block("skip").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        assert fold_constants(cfg) == 0

    def test_join_agreeing_constants(self):
        b = CFGBuilder()
        b.block("top").branch("p", "l", "r")
        b.block("l", "x = 5").jump("join")
        b.block("r", "x = 5").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        fold_constants(cfg)
        assert cfg.block("join").instrs[0].expr == Const(6)

    def test_join_disagreeing_constants(self):
        b = CFGBuilder()
        b.block("top").branch("p", "l", "r")
        b.block("l", "x = 5").jump("join")
        b.block("r", "x = 7").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        assert fold_constants(cfg) == 0

    def test_branch_condition_becomes_constant(self):
        b = CFGBuilder()
        b.block("top", "p = 1").branch("p", "l", "r")
        b.block("l").to_exit()
        b.block("r").to_exit()
        cfg = b.build()
        fold_constants(cfg)
        term = cfg.block("top").terminator
        assert isinstance(term, CondBranch)
        assert term.cond == Const(1)

    def test_loop_variant_not_folded(self):
        b = CFGBuilder()
        b.block("init", "i = 0").jump("head")
        b.block("head", "i = i + 1", "c = i < n").branch("c", "head", "out")
        b.block("out", "y = i * 2").to_exit()
        cfg = b.build()
        fold_constants(cfg)
        # i varies around the loop: no instruction may claim it constant
        # after the header.
        assert cfg.block("out").instrs[0].expr == __import__(
            "repro.ir.expr", fromlist=["BinExpr"]
        ).BinExpr("*", Var("i"), Const(2))

    def test_total_division_agrees_with_runtime(self):
        cfg = straight_line(["x = 7 / 0", "y = -7 / 2"])
        fold_constants(cfg)
        assert cfg.block("s0").instrs[0].expr == Const(0)
        assert cfg.block("s0").instrs[1].expr == Const(-3)

    def test_semantics_preserved_on_random_programs(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(8):
            cfg = random_cfg(seed, GeneratorConfig(statements=8))
            snapshot = cfg.copy()
            fold_constants(cfg)
            assert check_equivalence(snapshot, cfg, runs=10).equivalent, seed


class TestDeadCodeElimination:
    def test_shadowed_store_removed(self):
        cfg = straight_line(["x = a + b", "x = 5"])
        assert dead_code_elimination(cfg) == 1
        assert [str(i) for i in cfg.block("s0").instrs] == ["x = 5"]

    def test_final_values_are_observable(self):
        # x is never read but its final value is observable: keep it.
        cfg = straight_line(["x = a + b"])
        assert dead_code_elimination(cfg) == 0

    def test_narrowed_observable_set(self):
        cfg = straight_line(["x = a + b", "y = c * 2"])
        removed = dead_code_elimination(cfg, observable=["y"])
        assert removed == 1
        assert [str(i) for i in cfg.block("s0").instrs] == ["y = c * 2"]

    def test_cascading_removal(self):
        cfg = straight_line(["t1 = a + b", "t2 = t1 + 1", "t2 = 0", "t1 = 0"])
        # t2 = t1+1 is shadowed; then t1 = a+b becomes shadowed too.
        assert dead_code_elimination(cfg) == 2

    def test_loop_use_keeps_store(self):
        b = CFGBuilder()
        b.block("init", "s = 0").jump("head")
        b.block("head", "s = s + 1", "c = s < n").branch("c", "head", "out")
        b.block("out").to_exit()
        cfg = b.build()
        assert dead_code_elimination(cfg) == 0

    def test_semantics_preserved(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(8):
            cfg = random_cfg(seed, GeneratorConfig(statements=8))
            snapshot = cfg.copy()
            dead_code_elimination(cfg)
            assert check_equivalence(snapshot, cfg, runs=10).equivalent, seed

    def test_observable_name_never_mentioned_is_kept_in_universe(self):
        # A name declared observable but absent from the program used to
        # be silently dropped from the liveness universe; it must stay
        # (live everywhere: nothing ever assigns it) and DCE must accept
        # such observable sets without surprises.
        from repro.analysis.liveness import compute_liveness

        cfg = straight_line(["x = a + b", "y = c * 2"])
        live = compute_liveness(cfg, live_at_exit=["y", "phantom"])
        assert "phantom" in live.variables
        assert live.is_live_in("s0", "phantom")
        assert live.is_live_out("s0", "phantom")

        removed = dead_code_elimination(cfg, observable=["y", "phantom"])
        assert removed == 1  # x is dead; phantom changes nothing else
        assert [str(i) for i in cfg.block("s0").instrs] == ["y = c * 2"]
