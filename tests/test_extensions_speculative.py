"""Unit tests for profile-guided speculative loop-invariant motion."""

from repro.analysis.frequency import profile_from_runs
from repro.core.optimality import check_equivalence, compare_per_path
from repro.extensions.speculative import speculative_transform
from repro.ir.builder import CFGBuilder


def while_loop_graph():
    """A zero-trip-capable while loop with an invariant in the body."""
    b = CFGBuilder()
    b.block("init", "i = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "z = a * k", "s = s + z", "i = i + 1").jump("head")
    b.block("out").to_exit()
    return b.build()


def hot_profile(cfg):
    """Loops run many iterations: speculation should pay."""
    profile = profile_from_runs(cfg, [{"n": 10, "a": 2, "k": 3}] * 3)
    profile.attach(minimum=1)
    return cfg


def cold_profile(cfg):
    """Loops never run: speculation should be rejected."""
    profile = profile_from_runs(cfg, [{"n": 0, "a": 2, "k": 3}] * 3)
    profile.attach(minimum=1)
    return cfg


class TestDecisions:
    def test_hot_loop_hoists(self):
        cfg = hot_profile(while_loop_graph())
        result, report = speculative_transform(cfg)
        assert report.hoisted
        header, expr, inside, entry = report.hoisted[0]
        assert str(expr) == "a * k"
        assert inside > entry

    def test_cold_loop_rejects(self):
        cfg = cold_profile(while_loop_graph())
        result, report = speculative_transform(cfg)
        assert not report.hoisted
        assert report.rejected
        # The program is unchanged.
        assert str(result.cfg) == str(cfg)

    def test_explicit_frequencies_override_weights(self):
        cfg = while_loop_graph()
        freq = {label: 1 for label in cfg.labels}
        freq["body"] = 50
        result, report = speculative_transform(cfg, frequencies=freq)
        assert report.hoisted

    def test_variant_expression_never_hoisted(self):
        cfg = hot_profile(while_loop_graph())
        _, report = speculative_transform(cfg)
        hoisted = {str(expr) for _, expr, _, _ in report.hoisted}
        assert "i + 1" not in hoisted
        assert "i < n" not in hoisted

    def test_describe_mentions_decisions(self):
        cfg = hot_profile(while_loop_graph())
        _, report = speculative_transform(cfg)
        assert "hoisted" in report.describe()


class TestSemanticsAndTradeoff:
    def test_semantics_preserved(self):
        cfg = hot_profile(while_loop_graph())
        result, _ = speculative_transform(cfg)
        assert check_equivalence(cfg, result.cfg, runs=25).equivalent

    def test_speculation_violates_classic_safety(self):
        cfg = hot_profile(while_loop_graph())
        result, report = speculative_transform(cfg)
        assert report.hoisted
        per_path = compare_per_path(cfg, result.cfg, max_branches=5)
        # The zero-trip path now evaluates a*k once where the original
        # evaluated it zero times.
        assert not per_path.safe

    def test_speculation_beats_lcm_on_hot_loops(self):
        from repro.core.pipeline import optimize
        from repro.interp.machine import run

        cfg = hot_profile(while_loop_graph())
        spec, report = speculative_transform(cfg)
        assert report.hoisted
        lcm = optimize(cfg, "lcm")
        env = {"n": 20, "a": 2, "k": 3, "s": 0}
        spec_cost = run(spec.cfg, env).total_evaluations
        lcm_cost = run(lcm.cfg, env).total_evaluations
        assert spec_cost < lcm_cost

    def test_input_not_mutated(self):
        cfg = hot_profile(while_loop_graph())
        before = str(cfg)
        speculative_transform(cfg)
        assert str(cfg) == before
