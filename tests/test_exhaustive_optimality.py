"""Exhaustive optimality: LCM against *every* placement, small graphs.

The sweeps elsewhere compare LCM against the other implemented
algorithms; on graphs small enough, we can do what the paper's proof
does — quantify over **all** admissible transformations.  For one
expression, every (insertion-edge subset × deletion subset) pair is
applied; the pairs that survive the correctness and safety oracles are
exactly the admissible code motions, and the theorems say:

* T1 (computational optimality): none of them evaluates the expression
  less often than LCM on any path;
* T2 (lifetime optimality): among those matching LCM's counts on every
  path, none has the temporary live at an original block entry where
  LCM's is not.

A few hundred variants per graph — minutes of CPU in the paper's day,
seconds here.
"""

from itertools import chain, combinations

import pytest

from tests.helpers import AB, diamond, do_while_invariant

from repro.bench.figures import kill_into_join_example
from repro.core.lifetime import blockwise_dominates
from repro.core.optimality import (
    check_equivalence,
    compare_per_path,
    enumerate_traces,
    replay,
)
from repro.core.pipeline import optimize
from repro.core.placement import Placement
from repro.core.transform import apply_placements
from repro.ir.expr import BinExpr, Var


def powerset(items):
    items = list(items)
    return chain.from_iterable(
        combinations(items, r) for r in range(len(items) + 1)
    )


def upward_exposed_blocks(cfg, expr):
    from repro.core.placement import _has_upward_exposed

    return [
        label for label in cfg.labels if _has_upward_exposed(cfg, label, expr)
    ]


def admissible_variants(cfg, expr, max_branches):
    """Yield (variant cfg, placement) for every correct, safe placement."""
    temp = "t.exhaustive"
    for ins in powerset(cfg.edges()):
        for dels in powerset(upward_exposed_blocks(cfg, expr)):
            placement = Placement.make(
                expr, temp, insert_edges=ins, delete_blocks=dels
            )
            try:
                result = apply_placements(cfg, [placement])
            except Exception:
                continue
            if not check_equivalence(cfg, result.cfg, runs=12).equivalent:
                continue  # a deletion its insertions do not cover
            if not compare_per_path(
                cfg, result.cfg, max_branches=max_branches
            ).safe:
                continue  # inadmissible: some path pays more
            yield result, placement


CASES = [
    ("diamond", diamond, AB, 4),
    ("kill_into_join", kill_into_join_example,
     BinExpr("*", Var("b"), Var("b")), 4),
    ("do_while", do_while_invariant, AB, 4),
]


@pytest.mark.parametrize("name,builder,expr,bound", CASES, ids=[c[0] for c in CASES])
def test_no_admissible_placement_beats_lcm(name, builder, expr, bound):
    cfg = builder()
    lcm = optimize(cfg, "lcm")
    lcm_counts = {
        trace.decisions: trace.count(expr)
        for trace in enumerate_traces(lcm.cfg, bound)
    }
    checked = 0
    comp_optimal = 0
    for variant, placement in admissible_variants(cfg, expr, bound):
        checked += 1
        ties_everywhere = True
        for decisions, lcm_count in lcm_counts.items():
            variant_count = replay(variant.cfg, decisions).count(expr)
            assert variant_count >= lcm_count, (
                f"{name}: {placement.describe()} beats LCM on {decisions}"
            )
            if variant_count != lcm_count:
                ties_everywhere = False
        if ties_everywhere:
            comp_optimal += 1
            # T2 on the computationally optimal competitors: LCM's
            # temporary liveness at original block entries is minimal.
            temps = lcm.temps & variant.temps
            if temps:
                violations = blockwise_dominates(
                    lcm.cfg, variant.cfg, temps, cfg.labels
                )
                # LCM itself may appear as a competitor (same plan with
                # our explicit temp name is a *different* temp, so the
                # shared-temps filter usually skips it).
                assert violations == [], (name, placement.describe(), violations)
    assert checked >= 8, f"{name}: too few admissible variants exercised"
    assert comp_optimal >= 1, f"{name}: no competitor matched LCM (suspicious)"
