"""Golden analysis vectors: every predicate of the edge-based pipeline
on the running example, hand-derived and pinned bit by bit.

If any analysis equation drifts, the failing assertion names the exact
predicate and block/edge, which makes this the fastest regression
locator in the suite.
"""

import pytest

from tests.helpers import names

from repro.bench.figures import running_example
from repro.core.lcm import analyze_lcm
from repro.ir.expr import BinExpr, Var

AB = BinExpr("+", Var("a"), Var("b"))
CD = BinExpr("+", Var("c"), Var("d"))


@pytest.fixture(scope="module")
def analysis():
    return analyze_lcm(running_example())


def edge_set(table, idx):
    return {edge for edge, vec in table.items() if idx in vec}


class TestGoldenAPlusB:
    """a + b: occurrences in n2, n4, n6, n10; killed by n5's a = k*3."""

    def test_local_predicates(self, analysis):
        idx = analysis.universe.index_of(AB)
        assert names(analysis.local.antloc, idx) == {"n2", "n4", "n6", "n10"}
        assert names(analysis.local.comp, idx) == {"n2", "n4", "n6", "n10"}
        # Only n5 (a = k * 3) kills it.
        opaque = set(analysis.cfg.labels) - names(analysis.local.transp, idx)
        assert opaque == {"n5"}

    def test_anticipability(self, analysis):
        idx = analysis.universe.index_of(AB)
        # Down-safe from the entry through every path to a use.  n5's
        # entry anticipates nothing (its kill precedes the uses below);
        # n7 anticipates it because both successors (n6 and n8->..->n10)
        # lead to a use with no kill in between.
        assert names(analysis.antin, idx) == {
            "entry", "n1", "n2", "n3", "n4", "n6", "n7", "n8", "n9", "n10",
        }
        assert names(analysis.antout, idx) == {
            "entry", "n1", "n2", "n3", "n5", "n6", "n7", "n8", "n9",
        }

    def test_availability(self, analysis):
        idx = analysis.universe.index_of(AB)
        assert names(analysis.avout, idx) == {
            "n2", "n4", "n6", "n7", "n8", "n9", "n10", "exit",
        }
        # Not at n4's entry (the n3 arm computed nothing) and not at
        # n10's (the n5->n10 arm comes straight from the kill).
        assert names(analysis.avin, idx) == {
            "n5", "n7", "n8", "n9", "exit",
        }

    def test_earliest_edges(self, analysis):
        idx = analysis.universe.index_of(AB)
        assert edge_set(analysis.earliest, idx) == {
            ("entry", "n1"),
            ("n5", "n6"),
            ("n5", "n10"),
        }

    def test_laterin(self, analysis):
        idx = analysis.universe.index_of(AB)
        assert names(analysis.laterin, idx) == {"n1", "n2", "n3"}

    def test_insert_and_delete(self, analysis):
        idx = analysis.universe.index_of(AB)
        assert edge_set(analysis.insert, idx) == {
            ("n3", "n4"),
            ("n5", "n6"),
            ("n5", "n10"),
        }
        assert names(analysis.delete, idx) == {"n4", "n6", "n10"}


class TestGoldenCPlusD:
    """c + d: a single isolated occurrence in n8 — nothing may move."""

    def test_local(self, analysis):
        idx = analysis.universe.index_of(CD)
        assert names(analysis.local.antloc, idx) == {"n8"}
        # Transparent everywhere (c and d are never assigned).
        assert names(analysis.local.transp, idx) == set(analysis.cfg.labels)

    def test_anticipability_flows_through_the_loop(self, analysis):
        idx = analysis.universe.index_of(CD)
        # Every *terminating* path from the loop reaches n8 before c or
        # d change, so anticipability (computed on paths to the exit)
        # holds throughout the loop — but not above n5, because the
        # n5 -> n10 arm never computes c + d.
        assert names(analysis.antin, idx) == {"n6", "n7", "n8"}

    def test_untouched(self, analysis):
        idx = analysis.universe.index_of(CD)
        assert edge_set(analysis.insert, idx) == set()
        assert names(analysis.delete, idx) == set()
        # The postponement covers the whole loop and ends *at* the use.
        assert names(analysis.laterin, idx) == {"n6", "n7", "n8"}


class TestGoldenKTimes3:
    """k * 3: single occurrence in n5 (the kill block) — untouched."""

    def test_untouched(self, analysis):
        from repro.ir.expr import Const

        idx = analysis.universe.index_of(BinExpr("*", Var("k"), Const(3)))
        assert edge_set(analysis.insert, idx) == set()
        assert names(analysis.delete, idx) == set()
