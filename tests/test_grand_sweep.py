"""The grand integration sweep: one broad, cross-cutting pass.

A wider net than the targeted integration tests: thirty structured and
fifteen unstructured programs, each run through every strategy and the
full pass pipeline, with all four oracles.  Kept in one module so the
cost (a few seconds) is easy to see and to prune if it ever grows.
"""

import pytest

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.lifetime import measure_lifetimes
from repro.core.optimality import (
    check_equivalence,
    compare_per_path,
    paths_agree,
)
from repro.core.pipeline import optimize
from repro.ir.validate import validate_cfg
from repro.passes import standard_pipeline

STRUCTURED_SEEDS = range(100, 130)
SHAPE_SEEDS = range(200, 215)


class TestGrandSweepStructured:
    @pytest.mark.parametrize("seed", STRUCTURED_SEEDS)
    def test_lcm_all_oracles(self, seed):
        cfg = random_cfg(seed, GeneratorConfig(statements=9))
        result = optimize(cfg, "lcm")
        validate_cfg(result.cfg)
        assert check_equivalence(cfg, result.cfg, runs=8, seed=seed).equivalent
        report = compare_per_path(cfg, result.cfg, max_branches=6)
        assert report.safe
        bcm = optimize(cfg, "bcm")
        assert paths_agree(result.cfg, bcm.cfg, max_branches=6)
        lcm_span = measure_lifetimes(result.cfg, result.temps).total_live_points
        bcm_span = measure_lifetimes(bcm.cfg, bcm.temps).total_live_points
        assert lcm_span <= bcm_span

    @pytest.mark.parametrize("seed", list(STRUCTURED_SEEDS)[:10])
    def test_pipeline_all_oracles(self, seed):
        cfg = random_cfg(seed, GeneratorConfig(statements=9))
        result = standard_pipeline(cfg)
        validate_cfg(result.cfg)
        assert check_equivalence(
            cfg, result.cfg, runs=8, seed=seed, compare_decisions=False
        ).equivalent


class TestGrandSweepShapes:
    @pytest.mark.parametrize("seed", SHAPE_SEEDS)
    def test_lcm_on_shapes(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=9))
        result = optimize(cfg, "lcm")
        validate_cfg(result.cfg)
        report = compare_per_path(cfg, result.cfg, max_branches=6)
        assert report.safe
        node = optimize(cfg, "krs-lcm")
        assert paths_agree(result.cfg, node.cfg, max_branches=6)
