"""Unit tests for bit vectors and operation counting."""

import random

import pytest

from repro.dataflow.bitvec import BitVector, counting


def naive_indices(vec):
    """Reference implementation: probe every position in order."""
    return [i for i in range(vec.width) if vec.get(i)]


class TestIndices:
    def test_randomized_matches_naive(self):
        # indices() skips zero runs; it must agree with the
        # position-by-position reference on vectors of every density.
        rng = random.Random(97)
        for _ in range(200):
            width = rng.randrange(0, 260)
            density = rng.choice([0.0, 0.02, 0.1, 0.5, 0.9, 1.0])
            expected = [i for i in range(width) if rng.random() < density]
            vec = BitVector.of(width, expected)
            assert list(vec.indices()) == expected
            assert list(vec.indices()) == naive_indices(vec)

    def test_sparse_wide_vector(self):
        vec = BitVector.of(100_000, [0, 99_999])
        assert list(vec) == [0, 99_999]

    def test_empty_and_full(self):
        assert list(BitVector.empty(64)) == []
        assert list(BitVector.full(7)) == list(range(7))


class TestConstruction:
    def test_empty_and_full(self):
        assert BitVector.empty(4).count() == 0
        assert BitVector.full(4).count() == 4

    def test_of_indices(self):
        vec = BitVector.of(5, [0, 3])
        assert list(vec) == [0, 3]

    def test_singleton(self):
        assert list(BitVector.singleton(8, 6)) == [6]

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            BitVector.of(3, [3])

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_excess_bits_rejected(self):
        with pytest.raises(ValueError):
            BitVector(2, 0b100)

    def test_zero_width(self):
        vec = BitVector.full(0)
        assert vec == BitVector.empty(0)
        assert not vec


class TestOperations:
    def test_and(self):
        assert list(BitVector.of(4, [0, 1]) & BitVector.of(4, [1, 2])) == [1]

    def test_or(self):
        assert list(BitVector.of(4, [0]) | BitVector.of(4, [2])) == [0, 2]

    def test_xor(self):
        assert list(BitVector.of(4, [0, 1]) ^ BitVector.of(4, [1, 2])) == [0, 2]

    def test_invert_bounded_by_width(self):
        assert list(~BitVector.of(3, [1])) == [0, 2]

    def test_difference(self):
        assert list(BitVector.of(4, [0, 1, 2]) - BitVector.of(4, [1])) == [0, 2]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector.empty(3) & BitVector.empty(4)

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BitVector.empty(3) & 5  # type: ignore[operator]

    def test_double_invert_identity(self):
        vec = BitVector.of(7, [0, 3, 6])
        assert ~~vec == vec


class TestQueries:
    def test_contains(self):
        vec = BitVector.of(4, [2])
        assert 2 in vec
        assert 1 not in vec
        assert 99 not in vec

    def test_get_range_checked(self):
        with pytest.raises(IndexError):
            BitVector.empty(3).get(3)

    def test_with_bit(self):
        vec = BitVector.empty(4).with_bit(2)
        assert list(vec) == [2]
        assert list(vec.with_bit(2, False)) == []

    def test_issubset(self):
        small = BitVector.of(4, [1])
        big = BitVector.of(4, [0, 1])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_bool(self):
        assert not BitVector.empty(4)
        assert BitVector.of(4, [0])

    def test_equality_and_hash(self):
        assert BitVector.of(4, [1]) == BitVector.of(4, [1])
        assert BitVector.of(4, [1]) != BitVector.of(5, [1])
        assert len({BitVector.of(4, [1]), BitVector.of(4, [1])}) == 1

    def test_immutability_via_with_bit(self):
        vec = BitVector.empty(4)
        vec.with_bit(1)
        assert vec.count() == 0

    def test_repr(self):
        assert repr(BitVector.of(4, [0, 2])) == "BitVector(4, {0, 2})"

    def test_count_matches_naive_popcount(self):
        # count() dispatches through a popcount bound once at import
        # (int.bit_count on 3.10+, a bin() fallback before that).
        from repro.dataflow import bitvec

        for vec in (
            BitVector.empty(0),
            BitVector.of(7, [0, 3, 6]),
            BitVector.full(130),
        ):
            assert vec.count() == bin(vec.bits).count("1")
        if hasattr(int, "bit_count"):
            assert bitvec._popcount(13) == (13).bit_count()


class TestCounting:
    def test_counts_each_kind(self):
        a, b = BitVector.of(4, [0]), BitVector.of(4, [1])
        with counting() as ops:
            _ = a & b
            _ = a | b
            _ = a - b
            _ = ~a
        assert ops.counts == {"and": 1, "or": 1, "andnot": 1, "not": 1}
        assert ops.total == 4

    def test_counting_off_by_default(self):
        a = BitVector.of(4, [0])
        with counting() as ops:
            pass
        _ = a & a  # outside the context: not counted
        assert ops.total == 0

    def test_nested_counting_restores_outer(self):
        a = BitVector.of(4, [0])
        with counting() as outer:
            _ = a & a
            with counting() as inner:
                _ = a | a
            _ = a & a
        assert inner.counts == {"or": 1}
        assert outer.counts == {"and": 2}

    def test_merged(self):
        a = BitVector.of(2, [0])
        with counting() as first:
            _ = a & a
        with counting() as second:
            _ = a & a
            _ = a | a
        merged = first.merged(second)
        assert merged.counts == {"and": 2, "or": 1}
