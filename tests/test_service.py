"""Tests for the repro serve daemon and the request-mode worker pool.

Servers run in-process on a background thread (never installing a
global tracer), with real worker processes underneath — so every test
asserts the daemon leaves no children behind.
"""

import multiprocessing
import socket
import threading
import time

import pytest

from repro.batch.driver import BatchConfig, WorkItem
from repro.batch.supervisor import WorkerPool
from repro.ir.serialize import cfg_to_json
from repro.lang import compile_program
from repro.service import ReproServer, Request, ServeClient, ServeConfig
from repro.service import protocol

SOURCE = "x = a + b; if (p) { y = a + b; } else { y = 0; } z = a + b;"


def _wait_for_no_children(timeout=8.0):
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() >= deadline:
            break
        time.sleep(0.05)
    return multiprocessing.active_children()


@pytest.fixture
def serve():
    """Start servers on demand; stop them (and assert no orphans) after."""
    servers = []

    def start(**kwargs):
        server = ReproServer(ServeConfig(**kwargs))
        host, port = server.start_in_thread()
        servers.append(server)
        return server, host, port

    yield start
    for server in servers:
        server.stop()
    assert _wait_for_no_children() == []


class TestServeBasics:
    def test_optimize_roundtrip(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            record = client.optimize(SOURCE)
        assert record["type"] == "result"
        assert record["status"] == "ok"
        assert record["cached"] is False
        assert record["fingerprint"]
        assert record["static_before"] > record["static_after"]

    def test_analyze_op(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            record = client.analyze(SOURCE)
        assert record["status"] == "ok"
        placements = record["analysis"]["placements"]
        assert placements["a + b"]["delete_blocks"]

    def test_json_kind(self, serve):
        _, host, port = serve(jobs=1)
        payload = cfg_to_json(compile_program(SOURCE))
        with ServeClient(host, port, timeout=30) as client:
            record = client.optimize(payload, kind="json")
        assert record["status"] == "ok"

    def test_bad_program_is_error_record(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            record = client.optimize("x = = ;")
            # The daemon answered with a structured record and lives on.
            assert record["status"] == "error"
            assert client.ping()["type"] == "pong"

    def test_stats_shape(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            client.optimize(SOURCE)
            stats = client.stats()
        assert stats["protocol"] == protocol.PROTOCOL
        assert stats["version"] == protocol.PROTOCOL_VERSION
        assert stats["jobs"] == 1
        assert stats["counters"]["serve.request.optimize"] == 1
        assert stats["counters"]["serve.result.ok"] == 1
        assert "supervisor" in stats
        assert stats["cache"]["memory_entries"] == 1

    def test_shutdown_request_stops_the_daemon(self, serve):
        server, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            assert client.shutdown()["type"] == "bye"
        deadline = time.monotonic() + 8.0
        while server._thread.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not server._thread.is_alive()


class TestServeCache:
    def test_warm_repeat_skips_the_pool(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            cold = client.optimize(SOURCE)
            warm = client.optimize(SOURCE)
            counters = client.stats()["counters"]
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["fingerprint"] == cold["fingerprint"]
        # The fast path is counter-pinned: one miss, one hit, and the
        # pool dispatched exactly once — the repeat never saw a worker.
        assert counters["serve.cache.miss"] == 1
        assert counters["serve.cache.hit"] == 1
        assert counters["serve.pool.dispatch"] == 1

    def test_cache_disabled_dispatches_every_time(self, serve):
        _, host, port = serve(jobs=1, cache_size=0)
        with ServeClient(host, port, timeout=30) as client:
            client.optimize(SOURCE)
            repeat = client.optimize(SOURCE)
            counters = client.stats()["counters"]
        assert repeat["cached"] is False
        assert counters["serve.pool.dispatch"] == 2

    def test_distinct_requests_do_not_share_entries(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            client.optimize(SOURCE)
            other = client.optimize(SOURCE, pipeline=True)
            counters = client.stats()["counters"]
        assert other["cached"] is False
        assert counters["serve.pool.dispatch"] == 2

    def test_disk_tier_survives_a_restart(self, serve, tmp_path):
        store = str(tmp_path / "store")
        server1, host, port = serve(jobs=1, store_path=store)
        with ServeClient(host, port, timeout=30) as client:
            assert client.optimize(SOURCE)["status"] == "ok"
        server1.stop()

        _, host, port = serve(jobs=1, store_path=store)
        with ServeClient(host, port, timeout=30) as client:
            warm = client.optimize(SOURCE)
            counters = client.stats()["counters"]
        assert warm["cached"] is True
        assert counters["serve.cache.store_hit"] == 1
        assert counters.get("serve.pool.dispatch", 0) == 0


class TestServeConcurrency:
    def test_concurrent_clients(self, serve):
        _, host, port = serve(jobs=2)
        sources = [
            f"x = a + b; y = a + b; z = {i};" for i in range(6)
        ]
        results = [None] * len(sources)

        def worker(i):
            with ServeClient(host, port, timeout=60) as client:
                results[i] = client.optimize(sources[i], name=f"p{i}")

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(sources))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r is not None and r["status"] == "ok" for r in results)
        fingerprints = {r["fingerprint"] for r in results}
        assert len(fingerprints) == len(sources)  # distinct programs

    def test_admission_rejects_past_the_queue_limit(self, serve):
        _, host, port = serve(
            jobs=1, queue_limit=0, allow_call=True, grace=1.0
        )
        blocker = ServeClient(host, port, timeout=30)
        try:
            # Occupy the only worker (without reading the response yet).
            blocker._sock.sendall(
                protocol.encode(
                    Request(
                        op="optimize",
                        id="slow",
                        source="repro.batch.testing:sleep_forever",
                        kind="call",
                        timeout=2.0,
                    ).to_dict()
                )
            )
            with ServeClient(host, port, timeout=30) as probe:
                deadline = time.monotonic() + 5.0
                while probe.stats()["active"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                rejected = probe.optimize(SOURCE)
                assert rejected["type"] == "rejected"
                assert rejected["queue_limit"] == 0
                assert "queue full" in rejected["reason"]
                assert probe.stats()["counters"][
                    "serve.request.rejected"
                ] == 1
            # The blocker's request still completes (soft timeout).
            slow = blocker.call(Request(op="ping"))
            assert slow["type"] in ("pong", "result")
        finally:
            blocker.close()


class TestServeDeadlines:
    def test_hard_kill_and_daemon_survives(self, serve):
        server, host, port = serve(jobs=1, allow_call=True, grace=0.4)
        with ServeClient(host, port, timeout=30) as client:
            record = client.call(
                Request(
                    op="optimize",
                    source="repro.batch.testing:busy_loop_c",
                    kind="call",
                    timeout=0.3,
                )
            )
            assert record["status"] == "timeout"
            assert "killed" in record["message"]
            # The worker was SIGKILLed and respawned; the daemon keeps
            # serving on a fresh process.
            after = client.optimize(SOURCE)
            assert after["status"] == "ok"
            stats = client.stats()
        assert stats["supervisor"]["batch.item.killed"] == 1
        assert stats["supervisor"]["batch.worker.respawn"] == 1
        assert stats["counters"]["serve.result.timeout"] == 1

    def test_soft_timeout_keeps_the_worker(self, serve):
        _, host, port = serve(jobs=1, allow_call=True)
        with ServeClient(host, port, timeout=30) as client:
            record = client.call(
                Request(
                    op="optimize",
                    source="repro.batch.testing:sleep_forever",
                    kind="call",
                    timeout=0.3,
                )
            )
            assert record["status"] == "timeout"
            assert "exceeded" in record["message"]
            stats = client.stats()
        # SIGALRM fired inside the worker: no kill, no respawn.
        assert stats["supervisor"].get("batch.item.killed", 0) == 0


class TestServeProtocolEdges:
    def test_malformed_line_keeps_the_connection(self, serve):
        _, host, port = serve(jobs=1)
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            record = protocol.decode(handle.readline())
            assert record["type"] == "error"
            assert "bad JSON" in record["message"]
            sock.sendall(protocol.encode({"op": "ping", "id": "p"}))
            assert protocol.decode(handle.readline())["type"] == "pong"

    def test_unknown_op_is_an_error_record(self, serve):
        _, host, port = serve(jobs=1)
        with ServeClient(host, port, timeout=30) as client:
            record = client.call(Request(op="transmogrify"))
        assert record["type"] == "error"
        assert "unknown op" in record["message"]

    def test_call_kind_is_gated(self, serve):
        _, host, port = serve(jobs=1)  # no allow_call
        with ServeClient(host, port, timeout=30) as client:
            record = client.call(
                Request(
                    op="optimize",
                    source="repro.batch.testing:ok_cfg",
                    kind="call",
                )
            )
        assert record["type"] == "error"
        assert "allow-call" in record["message"]


class TestWorkerPool:
    def test_run_one_item(self):
        pool = WorkerPool(BatchConfig(), size=1)
        try:
            item = WorkItem(
                "p", "json", cfg_to_json(compile_program(SOURCE))
            )
            record = pool.run(item)
            assert record.ok
            assert record.fingerprint
        finally:
            pool.close()
        assert _wait_for_no_children() == []

    def test_hard_deadline_respawns(self):
        stats = {}
        pool = WorkerPool(
            BatchConfig(timeout=0.2, grace=0.2), size=1, stats=stats
        )
        try:
            record = pool.run(
                WorkItem("hang", "call", "repro.batch.testing:busy_loop_c")
            )
            assert record.status == "timeout"
            assert stats["batch.item.killed"] == 1
            assert stats["batch.worker.respawn"] == 1
            # The replacement worker serves the next request.
            ok = pool.run(
                WorkItem(
                    "p", "json", cfg_to_json(compile_program(SOURCE))
                )
            )
            assert ok.ok
        finally:
            pool.close()
        assert _wait_for_no_children() == []

    def test_close_is_idempotent(self):
        pool = WorkerPool(BatchConfig(), size=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(
                WorkItem(
                    "p", "json", cfg_to_json(compile_program(SOURCE))
                )
            )
        assert _wait_for_no_children() == []
