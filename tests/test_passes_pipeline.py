"""Integration tests for the composed pass pipeline."""

import pytest

from tests.helpers import diamond, do_while_invariant

from repro.bench.figures import FIGURES
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.core.optimality import check_equivalence
from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.validate import validate_cfg
from repro.passes import run_pipeline, standard_pipeline


class TestPipeline:
    def test_input_not_mutated(self):
        cfg = diamond()
        before = str(cfg)
        standard_pipeline(cfg)
        assert str(cfg) == before

    def test_output_validates(self):
        result = standard_pipeline(do_while_invariant())
        validate_cfg(result.cfg)

    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_figures_preserved(self, name):
        cfg = FIGURES[name]()
        result = standard_pipeline(cfg)
        report = check_equivalence(
            cfg, result.cfg, runs=20, compare_decisions=False
        )
        assert report.equivalent, report.mismatches[:2]

    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs_preserved(self, seed):
        cfg = random_cfg(seed, GeneratorConfig(statements=10))
        result = standard_pipeline(cfg)
        report = check_equivalence(
            cfg, result.cfg, runs=15, compare_decisions=False
        )
        assert report.equivalent, report.mismatches[:2]

    @pytest.mark.parametrize("seed", range(5))
    def test_pipeline_never_increases_dynamic_cost(self, seed):
        cfg = random_cfg(seed, GeneratorConfig(statements=10))
        result = standard_pipeline(cfg)
        for env in random_envs(cfg, 8, seed=seed):
            before = run(cfg, env)
            after = run(result.cfg, env)
            assert after.total_evaluations <= before.total_evaluations

    def test_cleanup_only_mode(self):
        cfg = diamond()
        result = run_pipeline(cfg, pre_strategy=None)
        assert "pre(lcm)" not in result.rewrites
        validate_cfg(result.cfg)

    def test_rewrites_recorded(self):
        result = standard_pipeline(do_while_invariant())
        assert result.total_rewrites > 0
        assert "pre(lcm)" in result.rewrites
        assert "pipeline:" in result.describe()

    def test_pipeline_beats_pre_alone_on_copies(self):
        # The cleanup trio should remove the x = t copies PRE leaves
        # when x is otherwise unused (shadowed) or forwardable.
        from repro.core.pipeline import optimize

        cfg = do_while_invariant()
        pre_only = optimize(cfg, "lcm")
        full = standard_pipeline(cfg)
        assert len(full.cfg) <= len(pre_only.cfg)
