"""Incremental fingerprints and dirty-region scheduling, pinned.

Three contracts from docs/OBSERVABILITY.md and docs/PERFORMANCE.md:

* the two-layer digest (:func:`block_fingerprint` +
  :func:`combine_fingerprints`) equals the from-scratch
  :func:`cfg_fingerprint` and is insensitive to the digest dict's
  iteration order but sensitive to everything that is content — block
  order, entry/exit, edges (via terminators), edge weights;
* a :class:`FingerprintState` kept current through edit scripts (and
  :meth:`~FingerprintState.derive` across graph copies) always agrees
  with hashing from scratch, while paying ``fingerprint.incr``
  refreshes instead of ``fingerprint.full`` re-hashes;
* ``run_pipeline(scheduling="dirty")`` produces bit-identical IR and
  rewrite tallies to the whole-CFG reference arm, on handwritten,
  random reducible and random irreducible graphs alike.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import diamond, do_while_invariant

from repro.api import optimize_cfg
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr, Var
from repro.ir.instr import Assign
from repro.ir.pretty import pretty_cfg
from repro.obs.fingerprint import (
    FingerprintState,
    block_fingerprint,
    cfg_fingerprint,
    combine_fingerprints,
)
from repro.obs.manager import (
    AnalysisManager,
    notify_cfg_edited,
    notify_cfg_mutated,
)
from repro.obs.trace import span, tracing
from repro.passes.pipeline import run_pipeline

SMALL = GeneratorConfig(statements=8, max_depth=2)
SHAPES = ShapeConfig(blocks=8, back_edge_probability=0.5)

quick = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _digests(cfg):
    return {block.label: block_fingerprint(block) for block in cfg}


class TestCombine:
    def test_two_layer_digest_equals_from_scratch(self):
        cfg = diamond()
        assert combine_fingerprints(cfg, _digests(cfg)) == cfg_fingerprint(cfg)

    def test_digest_dict_iteration_order_is_not_content(self):
        cfg = diamond()
        digests = _digests(cfg)
        reversed_insertion = dict(reversed(list(digests.items())))
        assert list(reversed_insertion) != list(digests)
        assert combine_fingerprints(cfg, reversed_insertion) == (
            combine_fingerprints(cfg, digests)
        )

    def test_extra_digests_for_removed_blocks_are_ignored(self):
        cfg = diamond()
        digests = _digests(cfg)
        digests["ghost"] = "0" * 64
        assert combine_fingerprints(cfg, digests) == cfg_fingerprint(cfg)

    def test_block_order_is_content(self):
        def build(arms):
            b = CFGBuilder()
            b.block("cond", "p = a < b").branch("p", "left", "right")
            for label, instrs in arms:
                b.block(label, *instrs).jump("join")
            b.block("join", "y = a + b").to_exit()
            return b.build()

        first = build([("left", ["x = a + b"]), ("right", [])])
        second = build([("right", []), ("left", ["x = a + b"])])
        assert {bl.label for bl in first} == {bl.label for bl in second}
        assert cfg_fingerprint(first) != cfg_fingerprint(second)

    def test_edges_are_content_via_terminators(self):
        from repro.ir.instr import CondBranch

        base = diamond()
        flipped = diamond()
        flipped.block("cond").terminator = CondBranch(
            Var("p"), "right", "left"
        )
        flipped.notify_terminator_changed()
        assert cfg_fingerprint(flipped) != cfg_fingerprint(base)

    def test_edge_weights_are_content(self):
        cfg = diamond()
        before = cfg_fingerprint(cfg)
        cfg.set_weight(("cond", "left"), 9)
        assert cfg_fingerprint(cfg) != before


class TestFingerprintState:
    def test_edit_refresh_matches_scratch(self):
        cfg = diamond()
        state = FingerprintState.of(cfg)
        assert state.value == cfg_fingerprint(cfg)
        cfg.block("join").append(Assign("q", BinExpr("+", Var("a"), Var("b"))))
        state.mark_edited(["join"])
        assert state.current(cfg) == cfg_fingerprint(cfg)

    def test_refresh_handles_added_and_removed_blocks(self):
        from repro.ir.instr import Jump

        cfg = diamond()
        state = FingerprintState.of(cfg)
        split = cfg.split_edge("right", "join", "landing")
        split.append(Assign("t", BinExpr("+", Var("a"), Var("b"))))
        state.mark_edited(["right", split.label])
        assert state.current(cfg) == cfg_fingerprint(cfg)
        # Undo the split: remove the landing block, jump straight again.
        cfg.remove_block(split.label)
        cfg.block("right").terminator = Jump("join")
        cfg.notify_terminator_changed()
        state.mark_edited(["right", split.label])
        assert state.current(cfg) == cfg_fingerprint(cfg)

    def test_derive_seeds_a_copy(self):
        cfg = diamond()
        state = FingerprintState.of(cfg)
        copy = cfg.copy()
        copy.block("left").append(
            Assign("z", BinExpr("+", Var("c"), Var("d")))
        )
        derived = state.derive(["left"])
        assert derived.value is None
        assert derived.current(copy) == cfg_fingerprint(copy)
        # The base state is untouched by the copy's refresh.
        assert state.current(cfg) == cfg_fingerprint(cfg)

    @quick
    @given(seeds, st.lists(st.integers(0, 10_000), min_size=1, max_size=6))
    def test_edit_scripts_agree_with_scratch(self, seed, script):
        cfg = random_cfg(seed, SMALL)
        state = FingerprintState.of(cfg)
        for step, pick in enumerate(script):
            labels = list(cfg.labels)
            label = labels[pick % len(labels)]
            block = cfg.block(label)
            if block.instrs and pick % 3 == 0:
                del block.instrs[0]
            else:
                block.append(
                    Assign(f"ed{step}", BinExpr("+", Var("a"), Var("b")))
                )
            state.mark_edited([label])
            assert state.current(cfg) == cfg_fingerprint(cfg)


class TestManagerCounters:
    def test_one_full_hash_then_incremental(self):
        manager = AnalysisManager()
        cfg = diamond()
        with tracing() as tracer:
            first = manager.fingerprint(cfg)
            assert manager.fingerprint(cfg) == first
            cfg.block("join").append(
                Assign("q", BinExpr("+", Var("a"), Var("b")))
            )
            notify_cfg_edited(cfg, ["join"])
            second = manager.fingerprint(cfg)
        assert second == cfg_fingerprint(cfg) != first
        assert tracer.counters.get("fingerprint.full", 0) == 1
        assert tracer.counters.get("fingerprint.incr", 0) == 1

    def test_structural_notify_with_labels_stays_incremental(self):
        manager = AnalysisManager()
        cfg = diamond()
        with tracing() as tracer:
            manager.fingerprint(cfg)
            split = cfg.split_edge("left", "join", "landing")
            notify_cfg_mutated(cfg, labels=["left", split.label])
            patched = manager.fingerprint(cfg)
        assert patched == cfg_fingerprint(cfg)
        assert tracer.counters.get("fingerprint.full", 0) == 1
        assert tracer.counters.get("fingerprint.incr", 0) == 1

    def test_legacy_knob_drops_instead_of_patching(self):
        manager = AnalysisManager(incremental_fingerprints=False)
        cfg = diamond()
        with tracing() as tracer:
            manager.fingerprint(cfg)
            cfg.block("join").append(
                Assign("q", BinExpr("+", Var("a"), Var("b")))
            )
            notify_cfg_edited(cfg, ["join"])
            refreshed = manager.fingerprint(cfg)
        assert refreshed == cfg_fingerprint(cfg)
        assert tracer.counters.get("fingerprint.full", 0) == 2
        assert tracer.counters.get("fingerprint.incr", 0) == 0

    def test_optimize_full_hash_budget(self):
        # The end-to-end chain (api -> lcse derive -> transform derive
        # -> cleanup edits): at most one whole-graph hash per item.
        manager = AnalysisManager()
        cfg = do_while_invariant()
        with tracing() as tracer:
            outcome = optimize_cfg(cfg, "lcm", manager=manager)
        assert outcome.fingerprint == cfg_fingerprint(outcome.cfg)
        assert tracer.counters.get("fingerprint.full", 0) <= 2


class TestSpanNoOp:
    def test_span_is_shared_null_context_when_tracing_off(self):
        first = span("anything", k=1)
        second = span("other")
        assert first is second
        with first as handle:
            handle.set(extra=2)  # accepted and discarded


def _assert_schedulings_agree(cfg):
    full = run_pipeline(cfg, "lcm", scheduling="full")
    dirty = run_pipeline(cfg, "lcm", scheduling="dirty")
    assert pretty_cfg(dirty.cfg) == pretty_cfg(full.cfg)
    assert cfg_fingerprint(dirty.cfg) == cfg_fingerprint(full.cfg)
    assert dirty.rewrites == full.rewrites


class TestDirtySchedulingEqualsFull:
    def test_on_handwritten_graphs(self):
        _assert_schedulings_agree(diamond())
        _assert_schedulings_agree(do_while_invariant())

    @quick
    @given(seeds)
    def test_on_random_reducible_cfgs(self, seed):
        _assert_schedulings_agree(random_cfg(seed, SMALL))

    @quick
    @given(seeds)
    def test_on_random_irreducible_cfgs(self, seed):
        _assert_schedulings_agree(random_shape_cfg(seed, SHAPES))

    @quick
    @given(seeds)
    def test_manager_fingerprint_matches_scratch_after_pipeline(self, seed):
        cfg = random_cfg(seed, SMALL)
        manager = AnalysisManager()
        manager.fingerprint(cfg)
        result = run_pipeline(cfg, "lcm", manager=manager)
        assert manager.fingerprint(result.cfg) == cfg_fingerprint(result.cfg)
