"""Unit tests for the coupled equation-system solver."""

import pytest

from tests.helpers import diamond, straight_line

from repro.dataflow.bidirectional import EquationSystem, solve_system
from repro.dataflow.bitvec import BitVector


class TestSolveSystem:
    def test_forward_propagation_fixpoint(self):
        """A simple 'reaches' system: one bit flows from entry to all."""
        cfg = straight_line(["x = 1"], ["y = 2"])
        width = 1
        full = BitVector.full(width)
        empty = BitVector.empty(width)

        def rule(label, state):
            if label == cfg.entry:
                return full
            value = empty
            for m in cfg.preds(label):
                value = value | state["r"][m]
            return value

        system = EquationSystem(width, ("r",), (("r", rule),))
        state, stats = solve_system(cfg, system)
        assert state["r"][cfg.exit] == full
        assert stats.sweeps >= 2

    def test_mutually_recursive_variables(self):
        """Two variables referencing each other still stabilise."""
        cfg = diamond()
        width = 1
        full = BitVector.full(width)

        def a_rule(label, state):
            return state["b"][label]

        def b_rule(label, state):
            if label == cfg.entry:
                return full
            value = full
            for m in cfg.preds(label):
                value = value & state["a"][m]
            return value

        system = EquationSystem(
            width, ("a", "b"), (("b", b_rule), ("a", a_rule)), init={"a": full, "b": full}
        )
        state, _ = solve_system(cfg, system)
        # Everything stays full: b(entry)=full seeds a, which feeds b.
        assert all(v == full for v in state["a"].values())

    def test_initial_state_defaults_to_empty(self):
        cfg = straight_line(["x = 1"])
        system = EquationSystem(2, ("v",), ())
        state = system.initial_state(cfg)
        assert all(v == BitVector.empty(2) for v in state["v"].values())

    def test_divergence_guard(self):
        cfg = straight_line(["x = 1"])
        width = 1
        flip = {"on": False}

        def oscillate(label, state):
            flip["on"] = not flip["on"]
            return BitVector.full(width) if flip["on"] else BitVector.empty(width)

        system = EquationSystem(width, ("v",), (("v", oscillate),))
        with pytest.raises(RuntimeError, match="converge"):
            solve_system(cfg, system, max_sweeps=4)
