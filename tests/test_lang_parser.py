"""Unit tests for the parser."""

import pytest

from repro.ir.expr import BinExpr, Const, UnaryExpr, Var
from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


class TestStatements:
    def test_assignment(self):
        program = parse_program("x = a + b;")
        stmt = program.body[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.target == "x"
        assert stmt.expr == BinExpr("+", Var("a"), Var("b"))

    def test_copy_assignment(self):
        stmt = parse_program("x = y;").body[0]
        assert stmt.expr == Var("y")

    def test_constant_assignment(self):
        stmt = parse_program("x = 5;").body[0]
        assert stmt.expr == Const(5)

    def test_negative_constant(self):
        stmt = parse_program("x = -5;").body[0]
        assert stmt.expr == Const(-5)

    def test_unary_negation_of_var(self):
        stmt = parse_program("x = -y;").body[0]
        assert stmt.expr == UnaryExpr("-", Var("y"))

    def test_skip(self):
        assert isinstance(parse_program("skip;").body[0], ast.SkipStmt)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse_program("x = 1")

    def test_if_without_else(self):
        stmt = parse_program("if (p) { x = 1; }").body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.cond == Var("p")
        assert stmt.else_body == ()

    def test_if_with_else(self):
        stmt = parse_program("if (a < b) { x = 1; } else { x = 2; }").body[0]
        assert stmt.cond == BinExpr("<", Var("a"), Var("b"))
        assert len(stmt.else_body) == 1

    def test_while(self):
        stmt = parse_program("while (i < n) { i = i + 1; }").body[0]
        assert isinstance(stmt, ast.WhileStmt)
        assert len(stmt.body) == 1

    def test_do_while(self):
        stmt = parse_program("do { i = i + 1; } while (i < n);").body[0]
        assert isinstance(stmt, ast.DoWhileStmt)

    def test_repeat(self):
        stmt = parse_program("repeat (3) { x = x + 1; }").body[0]
        assert isinstance(stmt, ast.RepeatStmt)
        assert stmt.count == Const(3)

    def test_nested_blocks(self):
        program = parse_program(
            "while (p) { if (q) { x = 1; } else { y = 2; } }"
        )
        loop = program.body[0]
        assert isinstance(loop.body[0], ast.IfStmt)

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_program("if (p) { x = 1;")


class TestExpressions:
    def test_function_min(self):
        stmt = parse_program("x = min(a, b);").body[0]
        assert stmt.expr == BinExpr("min", Var("a"), Var("b"))

    def test_function_abs(self):
        stmt = parse_program("x = abs(a);").body[0]
        assert stmt.expr == UnaryExpr("abs", Var("a"))

    def test_function_as_variable_rejected(self):
        # `min` is consumed as a call head, so the parser demands '('.
        with pytest.raises(ParseError, match=r"expected '\('"):
            parse_program("x = min + 1;")
        # In operand position the dedicated error fires.
        with pytest.raises(ParseError, match="function"):
            parse_program("x = a + min;")

    def test_shift(self):
        stmt = parse_program("x = a << 2;").body[0]
        assert stmt.expr == BinExpr("<<", Var("a"), Const(2))

    def test_bitwise_not(self):
        stmt = parse_program("x = ~a;").body[0]
        assert stmt.expr == UnaryExpr("~", Var("a"))

    def test_logical_not(self):
        stmt = parse_program("x = !p;").body[0]
        assert stmt.expr == UnaryExpr("!", Var("p"))

    def test_compound_expression_rejected(self):
        # Single-operator RHS only: a + b + c is not in the language.
        with pytest.raises(ParseError):
            parse_program("x = a + b + c;")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("x = 1;\nfoo")
        assert "line 2" in str(info.value)
