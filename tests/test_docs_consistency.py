"""Documentation consistency: every dotted ``repro....`` name the docs
mention must actually exist, and every file path they reference must be
on disk.  Keeps DESIGN.md / README / docs/ honest as the code moves.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    list(ROOT.glob("*.md")) + list((ROOT / "docs").glob("*.md"))
)

DOTTED = re.compile(r"`(repro(?:\.[a-z_]+)+)(?:\.([a-zA-Z_][a-zA-Z0-9_]*))?`")
PATHISH = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_/.]+\.(?:py|md|mini))`"
)
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_ids():
    return [path.name for path in DOC_FILES]


@pytest.fixture(params=DOC_FILES, ids=doc_ids())
def doc_text(request):
    return request.param, request.param.read_text()


class TestDocsConsistency:
    def test_dotted_names_resolve(self, doc_text):
        path, text = doc_text
        problems = []
        for match in DOTTED.finditer(text):
            module_name, attr = match.group(1), match.group(2)
            try:
                module = importlib.import_module(module_name)
            except ImportError:
                # Maybe the last segment is an attribute of the parent.
                parent, _, leaf = module_name.rpartition(".")
                try:
                    module = importlib.import_module(parent)
                except ImportError:
                    problems.append(module_name)
                    continue
                if not hasattr(module, leaf):
                    problems.append(module_name)
                continue
            if attr and not hasattr(module, attr):
                problems.append(f"{module_name}.{attr}")
        assert not problems, f"{path.name}: dangling references {problems}"

    def test_file_paths_exist(self, doc_text):
        path, text = doc_text
        missing = [
            ref
            for ref in PATHISH.findall(text)
            if not (ROOT / ref).exists()
        ]
        assert not missing, f"{path.name}: missing files {missing}"

    def test_relative_links_resolve(self, doc_text):
        """Every relative markdown link points at a real file.

        External links (http/https/mailto) and pure in-page anchors are
        skipped; a ``file.md#section`` link is checked against the file
        part.  This is what keeps the docs index and the cross-links
        between docs honest as files move.
        """
        path, text = doc_text
        broken = []
        for target in MARKDOWN_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative links {broken}"

    def test_benchmark_modules_mentioned_exist(self, doc_text):
        path, text = doc_text
        missing = [
            name
            for name in re.findall(r"`benchmarks/(bench_[a-z_]+\.py)`", text)
            if not (ROOT / "benchmarks" / name).exists()
        ]
        assert not missing, f"{path.name}: missing benchmarks {missing}"
