"""Unit tests for basic blocks."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.builder import parse_assign
from repro.ir.expr import Var
from repro.ir.instr import CondBranch, Jump


def block_with(*instrs: str) -> BasicBlock:
    blk = BasicBlock("b")
    for text in instrs:
        blk.append(parse_assign(text))
    return blk


class TestBasicBlock:
    def test_append_and_order(self):
        blk = block_with("x = a + b", "y = x + 1")
        assert [str(i) for i in blk.instrs] == ["x = a + b", "y = x + 1"]

    def test_append_rejects_non_assign(self):
        with pytest.raises(TypeError):
            BasicBlock("b").append(Jump("x"))  # type: ignore[arg-type]

    def test_successors_from_terminator(self):
        blk = BasicBlock("b", [], CondBranch(Var("p"), "t", "f"))
        assert blk.successors() == ("t", "f")

    def test_successors_unterminated(self):
        assert BasicBlock("b").successors() == ()

    def test_is_empty(self):
        assert BasicBlock("b").is_empty
        assert not block_with("x = 1").is_empty

    def test_computations_yields_only_operator_rhs(self):
        blk = block_with("x = a + b", "y = x", "z = c * d")
        found = list(blk.computations())
        assert [(i, str(e)) for i, e in found] == [(0, "a + b"), (2, "c * d")]

    def test_defs(self):
        assert block_with("x = a + b", "y = x").defs() == {"x", "y"}

    def test_uses_includes_terminator(self):
        blk = block_with("x = a + b")
        blk.terminator = CondBranch(Var("q"), "t", "f")
        assert blk.uses() == {"a", "b", "q"}

    def test_copy_is_independent(self):
        blk = block_with("x = a + b")
        blk.terminator = Jump("next")
        clone = blk.copy()
        clone.append(parse_assign("y = 1"))
        assert len(blk.instrs) == 1
        assert len(clone.instrs) == 2
        assert clone.terminator == blk.terminator

    def test_str_rendering(self):
        blk = block_with("x = a + b")
        blk.terminator = Jump("next")
        assert str(blk) == "b:\n  x = a + b\n  goto next"
