"""Tests for the library-facing experiment suite."""

import io

import pytest

from repro.bench.suite import EXPERIMENTS, run_suite


class TestSuite:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_each_experiment_produces_rows(self, name):
        table = EXPERIMENTS[name]()
        assert table.rows
        assert table.render()

    def test_run_suite_selected(self):
        out = io.StringIO()
        tables = run_suite(["F1"], out=out)
        assert len(tables) == 1
        assert "== F1 ==" in out.getvalue()

    def test_run_suite_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_suite(["nope"], out=io.StringIO())

    def test_t1_rows_all_safe_and_agreeing(self):
        table = EXPERIMENTS["T1/T3"]()
        for row in table.rows:
            assert row[-2] == "yes"  # safe
            assert row[-1] == "yes"  # LCM == BCM

    def test_t2_ladder_shape(self):
        table = EXPERIMENTS["T2"]()
        lcm_column = [int(row[2]) for row in table.rows]
        bcm_column = [int(row[1]) for row in table.rows]
        assert len(set(lcm_column)) == 1
        assert bcm_column == sorted(bcm_column)
        assert bcm_column[0] < bcm_column[-1]
