"""Unit tests for the bundled verification API."""

from tests.helpers import diamond

from repro.core.pipeline import optimize
from repro.core.verify import verify_transformation
from repro.ir.builder import parse_assign


class TestVerify:
    def test_lcm_verdict_ok(self):
        cfg = diamond()
        result = optimize(cfg, "lcm")
        verdict = verify_transformation(cfg, result.cfg, expect_profitable=True)
        assert verdict.ok
        assert "OK" in verdict.describe()

    def test_identity_ok_but_not_profitable(self):
        cfg = diamond()
        verdict = verify_transformation(cfg, cfg.copy(), expect_profitable=True)
        assert not verdict.ok
        assert any("improved" in f for f in verdict.failures)
        relaxed = verify_transformation(cfg, cfg.copy())
        assert relaxed.ok

    def test_semantic_break_detected(self):
        cfg = diamond()
        broken = cfg.copy()
        broken.block("join").instrs[0] = parse_assign("y = a - b")
        verdict = verify_transformation(cfg, broken)
        assert not verdict.ok
        assert any("semantics" in f for f in verdict.failures)

    def test_speculation_flagged_as_unsafe(self):
        cfg = diamond()
        unsafe = cfg.copy()
        unsafe.block("right").instrs.append(parse_assign("extra = a + b"))
        unsafe.block("right").instrs.append(parse_assign("extra2 = a + b"))
        verdict = verify_transformation(cfg, unsafe)
        assert not verdict.ok
        assert any("safety" in f for f in verdict.failures)
        # The same pair passes when speculation is expected.
        tolerant = verify_transformation(cfg, unsafe, expect_safe=False)
        assert tolerant.ok

    def test_structure_changing_pass_via_env_only_mode(self):
        from repro.passes import standard_pipeline

        cfg = diamond()
        result = standard_pipeline(cfg)
        verdict = verify_transformation(
            cfg, result.cfg, compare_decisions=False
        )
        assert verdict.ok

    def test_describe_lists_sections(self):
        cfg = diamond()
        verdict = verify_transformation(cfg, optimize(cfg, "lcm").cfg)
        text = verdict.describe()
        assert "structure" in text
        assert "semantics" in text
        assert "paths" in text
