"""Tests for the pass-registry API and its deprecation shims."""

import pytest

from tests.helpers import diamond

from repro.core.pipeline import (
    OptimizeConfig,
    OptimizeContext,
    available_strategies,
    get_pass,
    optimize,
    register_pass,
)
from repro.core.transform import TransformResult, apply_placements


class TestRegistry:
    def test_core_and_baseline_passes_registered(self):
        names = {s.name for s in available_strategies()}
        assert {"lcm", "bcm", "krs-lcm", "krs-alcm", "krs-bcm", "none",
                "gcse", "licm", "mr", "lcm-size"} <= names

    def test_get_pass_returns_callable_strategy(self):
        strategy = get_pass("lcm")
        assert strategy.name == "lcm"
        assert strategy.description
        result = strategy.run(diamond(), OptimizeContext(OptimizeConfig(), None))
        assert isinstance(result, TransformResult)

    def test_unknown_pass_error_lists_options(self):
        with pytest.raises(ValueError, match="lcm"):
            get_pass("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_pass("lcm")
            def _clash(cfg, ctx):  # pragma: no cover - never runs
                return None

    def test_custom_pass_registers_and_runs(self):
        @register_pass("identity-test", "leave the program alone")
        def _identity(cfg, ctx):
            return apply_placements(cfg, [])

        try:
            result = optimize(diamond(), "identity-test")
            assert result.cfg is not result.original
            assert {s.name for s in available_strategies()} >= {"identity-test"}
        finally:
            from repro.core import pipeline

            del pipeline._REGISTRY["identity-test"]

    def test_hidden_pass_resolves_but_never_enumerates(self):
        @register_pass("hidden-test", "fixture-only", hidden=True)
        def _hidden(cfg, ctx):
            return apply_placements(cfg, [])

        try:
            assert get_pass("hidden-test").hidden
            assert optimize(diamond(), "hidden-test").placements == []
            assert "hidden-test" not in {
                s.name for s in available_strategies()
            }
        finally:
            from repro.core import pipeline

            del pipeline._REGISTRY["hidden-test"]

    def test_miscompile_fixture_is_hidden(self):
        # Registered on import, resolvable for differential fuzzing,
        # but never offered by the CLI or whole-registry sweeps.
        import repro.batch.testing  # noqa: F401

        assert get_pass("miscompile-dce").hidden
        assert "miscompile-dce" not in {
            s.name for s in available_strategies()
        }

    def test_docstring_used_as_default_description(self):
        @register_pass("doc-test")
        def _documented(cfg, ctx):
            """First line becomes the description."""
            return apply_placements(cfg, [])

        try:
            assert (
                get_pass("doc-test").description
                == "First line becomes the description."
            )
        finally:
            from repro.core import pipeline

            del pipeline._REGISTRY["doc-test"]


class TestOptimizeSignature:
    def test_keyword_pass_selection(self):
        result = optimize(diamond(), pass_="none")
        assert result.placements == []

    def test_config_controls_validation_and_lcse(self):
        result = optimize(
            diamond(),
            "none",
            config=OptimizeConfig(run_local_cse=False, validate=False),
        )
        assert result.placements == []

    def test_legacy_strategy_kwarg_removed(self):
        # The PR-1 deprecation shim is gone: the pre-registry keywords
        # are plain unexpected arguments now.
        with pytest.raises(TypeError, match="strategy"):
            optimize(diamond(), strategy="lcm")

    def test_legacy_flags_removed(self):
        with pytest.raises(TypeError):
            optimize(diamond(), "none", run_local_cse=False, validate=False)

    def test_unknown_keyword_still_a_type_error(self):
        with pytest.raises(TypeError, match="frobnicate"):
            optimize(diamond(), "lcm", frobnicate=True)

    def test_positional_string_still_works(self):
        old = optimize(diamond(), "lcm")
        new = optimize(diamond(), pass_="lcm")
        assert [str(p) for p in old.placements] == [
            str(p) for p in new.placements
        ]
