"""Unit tests for expression canonicalisation."""

from tests.helpers import straight_line

from repro.core.optimality import check_equivalence
from repro.core.pipeline import optimize
from repro.ir.expr import BinExpr, Const, UnaryExpr, Var
from repro.passes.canonical import canonicalize, canonicalize_expr


class TestCanonicalizeExpr:
    def test_commutative_operands_sorted(self):
        assert canonicalize_expr(BinExpr("+", Var("b"), Var("a"))) == BinExpr(
            "+", Var("a"), Var("b")
        )

    def test_sorted_form_unchanged(self):
        expr = BinExpr("+", Var("a"), Var("b"))
        assert canonicalize_expr(expr) is expr

    def test_constant_moves_first(self):
        assert canonicalize_expr(BinExpr("*", Var("x"), Const(2))) == BinExpr(
            "*", Const(2), Var("x")
        )

    def test_noncommutative_untouched(self):
        expr = BinExpr("-", Var("b"), Var("a"))
        assert canonicalize_expr(expr) is expr

    def test_gt_mirrored_to_lt(self):
        assert canonicalize_expr(BinExpr(">", Var("a"), Var("b"))) == BinExpr(
            "<", Var("b"), Var("a")
        )

    def test_ge_mirrored_to_le(self):
        assert canonicalize_expr(BinExpr(">=", Var("a"), Const(3))) == BinExpr(
            "<=", Const(3), Var("a")
        )

    def test_unary_untouched(self):
        expr = UnaryExpr("-", Var("x"))
        assert canonicalize_expr(expr) is expr

    def test_min_max_sorted(self):
        assert canonicalize_expr(BinExpr("max", Var("z"), Var("a"))) == BinExpr(
            "max", Var("a"), Var("z")
        )


class TestCanonicalizeCfg:
    def test_counts_rewrites(self):
        cfg = straight_line(["x = b + a", "y = a + b", "z = a - b"])
        assert canonicalize(cfg) == 1

    def test_exposes_redundancy_to_pre(self):
        cfg = straight_line(["x = b + a"], ["y = a + b"])
        before = optimize(cfg, "lcm")
        # Different spellings: PRE sees two unrelated candidates.
        assert all(p.is_identity for p in before.placements)
        canonicalize(cfg)
        after = optimize(cfg, "lcm")
        assert any(not p.is_identity for p in after.placements)

    def test_semantics_preserved(self):
        cfg = straight_line(
            ["x = b + a", "p = a > b", "q = b >= a", "m = max(c, a)"]
        )
        snapshot = cfg.copy()
        canonicalize(cfg)
        assert check_equivalence(snapshot, cfg, runs=30).equivalent

    def test_idempotent(self):
        cfg = straight_line(["x = b + a", "p = a > b"])
        canonicalize(cfg)
        assert canonicalize(cfg) == 0

    def test_random_programs_preserved(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(6):
            cfg = random_cfg(seed, GeneratorConfig(statements=8))
            snapshot = cfg.copy()
            canonicalize(cfg)
            assert check_equivalence(snapshot, cfg, runs=10).equivalent, seed
