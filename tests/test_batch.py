"""Tests for the parallel corpus driver: isolation, determinism, merging.

The fault-injection items use the driver's ``call`` work-item kind:
module-level functions in *this* file are resolved by name inside the
worker (the pool forks, so ``tests.test_batch`` is already imported
there) and deliberately crash, hang or flake.
"""

from pathlib import Path

import pytest

from tests.helpers import diamond, do_while_invariant

from repro.batch import (
    BatchConfig,
    WorkItem,
    items_from_cfgs,
    items_from_dir,
    run_batch,
)
from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.serialize import cfg_from_json
from repro.lang import compile_program

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
MAX_STEPS = 2_000_000


# -- injection payloads (resolved by name inside workers) -------------------

def _ok_program():
    return diamond()


def _crash():
    raise RuntimeError("injected crash")


def _hang():
    while True:
        pass


_FLAKY_STATE = {"calls": 0}


def _flaky():
    _FLAKY_STATE["calls"] += 1
    if _FLAKY_STATE["calls"] == 1:
        raise RuntimeError("transient failure, succeeds on retry")
    return diamond()


def _call_item(name, fn_name):
    return WorkItem(name, "call", f"tests.test_batch:{fn_name}")


# -- building items ---------------------------------------------------------

class TestItems:
    def test_directory_scan_is_sorted_and_deterministic(self):
        items = items_from_dir(str(CORPUS_DIR))
        names = [item.name for item in items]
        assert names == sorted(names)
        assert len(items) >= 5
        assert items == items_from_dir(str(CORPUS_DIR))

    def test_missing_directory_rejected(self):
        with pytest.raises(ValueError, match="not a directory"):
            items_from_dir(str(CORPUS_DIR / "nope"))

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .*files"):
            items_from_dir(str(tmp_path))

    def test_in_memory_cfgs(self):
        items = items_from_cfgs([diamond(), do_while_invariant()], ["d", "w"])
        assert [item.name for item in items] == ["d", "w"]
        assert all(item.kind == "json" for item in items)

    def test_items_carry_cost_predictions(self):
        # In-memory items: blocks × static computations; corpus files:
        # file size.  Both feed the pooled driver's LPT scheduling.
        items = items_from_cfgs([diamond(), do_while_invariant()])
        assert all(item.cost > 0 for item in items)
        for item, cfg in zip(items, [diamond(), do_while_invariant()]):
            assert item.cost == len(cfg) * max(1, cfg.static_computation_count())
        for item in items_from_dir(str(CORPUS_DIR)):
            assert item.cost == Path(item.payload).stat().st_size


# -- the serial path --------------------------------------------------------

class TestSerial:
    def test_corpus_all_ok_in_input_order(self):
        items = items_from_dir(str(CORPUS_DIR))
        report = run_batch(items, BatchConfig(jobs=1))
        assert report.ok
        assert [item.name for item in report.items] == [i.name for i in items]
        assert [item.index for item in report.items] == list(range(len(items)))
        for item in report.items:
            assert item.fingerprint
            assert item.static_after <= item.static_before

    def test_report_json_schema(self):
        items = items_from_dir(str(CORPUS_DIR))[:3]
        report = run_batch(items, BatchConfig(jobs=1))
        payload = report.to_dict()
        assert payload["format"] == "repro-batch-report"
        assert payload["version"] == 3
        assert payload["items_total"] == 3
        assert payload["tally"] == {"ok": 3}
        assert 0.0 <= payload["cache"]["hit_rate"] <= 1.0
        assert payload["wall_time_s"] > 0
        assert len(payload["items"]) == 3

    def test_error_item_is_isolated(self):
        items = [
            _call_item("good", "_ok_program"),
            _call_item("bad", "_crash"),
            WorkItem("broken-src", "source", "x = ;"),
        ]
        report = run_batch(items, BatchConfig(jobs=1))
        assert not report.ok
        good, bad, broken = report.items
        assert good.status == "ok"
        assert bad.status == "error"
        assert "injected crash" in bad.message
        assert "RuntimeError" in bad.traceback
        assert broken.status == "error"  # parse errors are records too
        assert report.tally == {"ok": 1, "error": 2}

    def test_serial_timeout_interrupts_hang(self):
        items = [_call_item("spin", "_hang"), _call_item("fine", "_ok_program")]
        report = run_batch(items, BatchConfig(jobs=1, timeout=0.3))
        spin, fine = report.items
        assert spin.status == "timeout"
        assert "0.3" in spin.message
        assert fine.status == "ok"

    def test_bounded_retry_recovers_transient_failure(self):
        _FLAKY_STATE["calls"] = 0
        items = [_call_item("flaky", "_flaky")]
        report = run_batch(items, BatchConfig(jobs=1, retries=1))
        assert report.ok
        assert report.items[0].attempts == 2

    def test_retry_budget_is_bounded(self):
        items = [_call_item("bad", "_crash")]
        report = run_batch(items, BatchConfig(jobs=1, retries=2))
        assert report.items[0].status == "error"
        assert report.items[0].attempts == 3

    def test_warm_manager_hits_across_identical_items(self):
        # Two items with identical content: the second solves nothing.
        items = items_from_cfgs([diamond(), diamond()], ["first", "second"])
        report = run_batch(items, BatchConfig(jobs=1))
        assert report.ok
        assert report.items[1].cache["hits"] > 0
        assert report.cache_stats()["hits"] > 0

    def test_merged_observability(self):
        items = items_from_dir(str(CORPUS_DIR))[:4]
        report = run_batch(items, BatchConfig(jobs=1))
        merged = report.merged_summary()
        solve_keys = [k for k in merged if k.startswith("dataflow.solve")]
        assert solve_keys, merged.keys()
        per_item = sum(
            entry["count"]
            for item in report.items
            for key, entry in item.summary.items()
            if key.startswith("dataflow.solve")
        )
        assert sum(merged[k]["count"] for k in solve_keys) == per_item


# -- the process pool -------------------------------------------------------

class TestParallel:
    def test_parallel_ir_is_bit_identical_to_serial(self):
        items = items_from_dir(str(CORPUS_DIR))
        serial = run_batch(items, BatchConfig(jobs=1, keep_ir=True))
        pooled = run_batch(items, BatchConfig(jobs=2, keep_ir=True))
        assert serial.ok and pooled.ok
        assert [i.name for i in pooled.items] == [i.name for i in serial.items]
        assert [i.ir for i in pooled.items] == [i.ir for i in serial.items]
        assert [i.fingerprint for i in pooled.items] == [
            i.fingerprint for i in serial.items
        ]

    def test_crash_and_hang_isolated_while_rest_completes(self):
        items = [
            _call_item("ok-one", "_ok_program"),
            _call_item("crash", "_crash"),
            _call_item("spin", "_hang"),
            _call_item("ok-two", "_ok_program"),
        ]
        report = run_batch(items, BatchConfig(jobs=2, timeout=0.75))
        assert len(report.items) == 4  # complete despite failures
        by_name = {item.name: item for item in report.items}
        assert by_name["ok-one"].status == "ok"
        assert by_name["ok-two"].status == "ok"
        assert by_name["crash"].status == "error"
        assert "injected crash" in by_name["crash"].message
        assert by_name["spin"].status == "timeout"
        assert not report.ok
        assert report.error_count == 2
        # Input order survives out-of-order completion.
        assert [i.name for i in report.items] == [i.name for i in items]

    def test_lost_worker_is_attributed_to_the_single_running_item(self):
        # A worker killed outright (SIGKILL — what a segfault or the
        # OOM killer looks like) must cost exactly the item that was
        # running on it; every other item transparently lands on the
        # respawned worker instead of inheriting the error (the old
        # ProcessPoolExecutor driver error'd every in-flight item).
        items = [
            _call_item("ok-one", "_ok_program"),
            WorkItem("killer", "call", "repro.batch.testing:kill_self"),
            _call_item("ok-two", "_ok_program"),
            _call_item("ok-three", "_ok_program"),
            _call_item("ok-four", "_ok_program"),
        ]
        report = run_batch(items, BatchConfig(jobs=2))
        by_name = {item.name: item for item in report.items}
        assert by_name["killer"].status == "error"
        assert "worker lost" in by_name["killer"].message
        for name in ("ok-one", "ok-two", "ok-three", "ok-four"):
            assert by_name[name].status == "ok", by_name[name].message
        assert report.tally == {"ok": 4, "error": 1}
        assert report.supervisor["batch.worker.respawn"] >= 1

    def test_lost_worker_error_is_retried_on_a_fresh_worker(self):
        # Worker loss is a failure like any other: with a retry budget
        # the item re-runs on the respawned worker (and, when the
        # payload is deterministic death, fails again with attempts
        # exhausted).
        items = [WorkItem("killer", "call", "repro.batch.testing:kill_self"),
                 _call_item("fine", "_ok_program")]
        report = run_batch(items, BatchConfig(jobs=2, retries=1))
        killer, fine = report.items
        assert killer.status == "error"
        assert killer.attempts == 2
        assert fine.status == "ok"

    def test_pool_spreads_work(self):
        items = items_from_dir(str(CORPUS_DIR))
        report = run_batch(items, BatchConfig(jobs=2))
        assert report.ok
        assert all(item.pid is not None for item in report.items)

    def test_lpt_scheduling_preserves_report_order(self):
        # Costs deliberately ascending, so LPT dispatches in reverse
        # submission order — the report must still come back in input
        # order with every item ok.
        items = [
            WorkItem(f"p{i}", "call", "tests.test_batch:_ok_program", cost=float(i))
            for i in range(6)
        ]
        report = run_batch(items, BatchConfig(jobs=3))
        assert report.ok
        assert [item.name for item in report.items] == [i.name for i in items]
        assert [item.index for item in report.items] == list(range(len(items)))


# -- differential property: optimization preserves semantics ----------------

class TestDifferential:
    def test_batch_optimized_programs_match_originals(self):
        # Every batch-optimized corpus program must compute the same
        # final environment as its unoptimized original on random
        # inputs (restricted to the original's variables — the
        # optimizer introduces fresh temporaries).
        paths = sorted(CORPUS_DIR.glob("*.mini"))
        items = items_from_dir(str(CORPUS_DIR), suffixes=(".mini",))
        report = run_batch(items, BatchConfig(jobs=2, keep_ir=True))
        assert report.ok
        for path, item in zip(paths, report.items):
            original = compile_program(path.read_text())
            optimized = cfg_from_json(item.ir)
            variables = sorted(original.variables())
            for env in random_envs(original, count=5, seed=11):
                before = run(original, env, max_steps=MAX_STEPS)
                after = run(optimized, env, max_steps=MAX_STEPS)
                assert before.reached_exit and after.reached_exit, item.name
                assert {v: before.env.get(v, 0) for v in variables} == {
                    v: after.env.get(v, 0) for v in variables
                }, (item.name, env)
