"""Unit tests for traversal orders."""

from tests.helpers import diamond, straight_line

from repro.dataflow.order import (
    backward_order,
    postorder,
    reverse_postorder,
    rpo_index,
)
from repro.ir.builder import CFGBuilder


def loop_graph():
    b = CFGBuilder()
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "i = i + 1").jump("head")
    b.block("out").to_exit()
    return b.build()


class TestPostorder:
    def test_entry_last_in_postorder(self):
        assert postorder(diamond())[-1] == "entry"

    def test_all_blocks_present(self):
        cfg = diamond()
        assert set(postorder(cfg)) == set(cfg.labels)

    def test_rpo_entry_first(self):
        assert reverse_postorder(diamond())[0] == "entry"

    def test_rpo_topological_on_chain(self):
        cfg = straight_line(["x = 1"], ["y = 2"], ["z = 3"])
        rpo = reverse_postorder(cfg)
        assert rpo == ["entry", "s0", "s1", "s2", "exit"]

    def test_rpo_preds_before_succs_in_dag(self):
        cfg = diamond()
        index = rpo_index(cfg)
        assert index["cond"] < index["left"]
        assert index["cond"] < index["right"]
        assert index["left"] < index["join"] or index["right"] < index["join"]
        # In a DAG both predecessors come before the join.
        assert index["left"] < index["join"] and index["right"] < index["join"]

    def test_rpo_loop_header_before_body(self):
        index = rpo_index(loop_graph())
        assert index["head"] < index["body"]


class TestBackwardOrder:
    def test_exit_first(self):
        assert backward_order(diamond())[0] == "exit"

    def test_all_blocks_present(self):
        cfg = loop_graph()
        assert set(backward_order(cfg)) == set(cfg.labels)

    def test_succs_before_preds_on_chain(self):
        cfg = straight_line(["x = 1"], ["y = 2"])
        order = backward_order(cfg)
        assert order.index("s1") < order.index("s0")

    def test_deterministic(self):
        assert backward_order(diamond()) == backward_order(diamond())
