"""Unit tests for the local predicates ANTLOC / COMP / TRANSP.

These pin down the classic subtleties: self-killing computations
(``a = a + b``), recomputation after a kill in one block, and blocks
where ANTLOC and COMP hold for *different* occurrences.
"""

from tests.helpers import AB, straight_line

from repro.analysis.local import compute_local_properties
from repro.analysis.universe import ExprUniverse


def props_of(*instrs: str):
    cfg = straight_line(list(instrs))
    universe = ExprUniverse.of_cfg(cfg)
    universe.add(AB)  # ensure a+b is indexed even if absent from the code
    local = compute_local_properties(cfg, universe)
    idx = local.universe.index_of(AB)
    label = "s0"
    return (
        idx in local.antloc[label],
        idx in local.comp[label],
        idx in local.transp[label],
    )


class TestSingleBlock:
    def test_plain_computation(self):
        antloc, comp, transp = props_of("x = a + b")
        assert antloc and comp and transp

    def test_self_kill(self):
        # a = a + b: upwards exposed, but not available afterwards.
        antloc, comp, transp = props_of("a = a + b")
        assert antloc
        assert not comp
        assert not transp

    def test_kill_before_computation(self):
        # The occurrence after the kill is downwards but not upwards exposed.
        antloc, comp, transp = props_of("a = c * 2", "x = a + b")
        assert not antloc
        assert comp
        assert not transp

    def test_kill_after_computation(self):
        antloc, comp, transp = props_of("x = a + b", "b = 0")
        assert antloc
        assert not comp
        assert not transp

    def test_antloc_and_comp_from_distinct_occurrences(self):
        # occurrence 1 (upwards exposed), kill, occurrence 2 (downwards).
        antloc, comp, transp = props_of("x = a + b", "a = 9", "y = a + b")
        assert antloc and comp
        assert not transp

    def test_transparent_block_without_occurrence(self):
        antloc, comp, transp = props_of("q = c * d")
        assert not antloc and not comp and transp

    def test_copy_does_not_generate(self):
        cfg = straight_line(["x = y"])
        local = compute_local_properties(cfg)
        assert local.universe.width == 0

    def test_redefining_unrelated_var_keeps_transparency(self):
        antloc, comp, transp = props_of("x = a + b", "x = 5")
        # x is not an operand of a+b; redefining it changes nothing.
        assert antloc and comp and transp


class TestAcrossBlocks:
    def test_empty_blocks_fully_transparent(self):
        cfg = straight_line(["x = a + b"])
        local = compute_local_properties(cfg)
        idx = local.universe.index_of(AB)
        for label in ("entry", "exit"):
            assert idx in local.transp[label]
            assert idx not in local.antloc[label]
            assert idx not in local.comp[label]

    def test_external_universe_keeps_indices(self):
        cfg = straight_line(["x = a + b"])
        universe = ExprUniverse()
        from repro.ir.expr import BinExpr, Var

        universe.add(BinExpr("*", Var("c"), Var("d")))  # index 0, absent here
        universe.add(AB)  # index 1
        local = compute_local_properties(cfg, universe)
        assert local.universe is universe
        assert 1 in local.antloc["s0"]
        assert 0 not in local.antloc["s0"]

    def test_describe_mentions_all_three_predicates(self):
        cfg = straight_line(["x = a + b"])
        local = compute_local_properties(cfg)
        text = local.describe("s0")
        assert "ANTLOC" in text and "COMP" in text and "TRANSP" in text
