"""Unit tests for the one-call optimize() pipeline."""

import pytest

from tests.helpers import diamond, do_while_invariant

from repro.core.pipeline import OptimizeConfig, available_strategies, optimize
from repro.core.optimality import check_equivalence
from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instr import Halt, Jump
from repro.ir.validate import ValidationError

ALL_STRATEGIES = [s.name for s in available_strategies()]


class TestOptimize:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_every_strategy_preserves_semantics(self, strategy):
        cfg = do_while_invariant()
        result = optimize(cfg, strategy)
        assert check_equivalence(cfg, result.cfg, runs=25).equivalent

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_input_never_mutated(self, strategy):
        cfg = diamond()
        before = str(cfg)
        optimize(cfg, strategy)
        assert str(cfg) == before

    def test_unknown_strategy_lists_options(self):
        with pytest.raises(ValueError, match="lcm"):
            optimize(diamond(), "bogus")

    def test_validation_on_by_default(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("entry", [], Jump("exit")))
        cfg.add_block(BasicBlock("exit", [], Halt()))
        cfg.add_block(BasicBlock("island", [], Jump("exit")))
        with pytest.raises(ValidationError):
            optimize(cfg, "lcm")

    def test_validation_can_be_disabled(self):
        cfg = diamond()
        optimize(cfg, "lcm", config=OptimizeConfig(validate=False))

    def test_result_original_is_callers_graph(self):
        cfg = diamond()
        result = optimize(cfg, "lcm")
        assert result.original is cfg

    def test_none_strategy_is_identity(self):
        cfg = diamond()
        result = optimize(
            cfg, "none", config=OptimizeConfig(run_local_cse=False)
        )
        assert str(result.cfg) == str(cfg)

    def test_local_cse_folded_in(self):
        from tests.helpers import straight_line

        cfg = straight_line(["x = a + b", "y = a + b"])
        result = optimize(cfg, "none")  # LCSE still runs by default
        assert str(result.cfg.block("s0").instrs[1]) == "y = x"

    def test_strategy_metadata(self):
        names = {s.name for s in available_strategies()}
        assert {"lcm", "bcm", "mr", "gcse", "licm", "none"} <= names
        assert all(s.description for s in available_strategies())

    def test_lcm_reduces_static_count_on_diamond(self):
        cfg = diamond()
        result = optimize(cfg, "lcm")
        # 3 occurrences before (a<b, a+b twice); after: a<b, the
        # generator's computation, and one insertion = 3.  Static size
        # may tie, but the dynamic benefit is checked elsewhere; here we
        # just pin the structural outcome.
        assert result.cfg.static_computation_count() == 3
        assert any(not p.is_identity for p in result.placements)
