"""Unit tests for statement-granular expansion."""

from tests.helpers import diamond, straight_line

from repro.core.nodegraph import expand_to_nodes
from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.validate import validate_cfg


class TestExpandToNodes:
    def test_every_node_has_at_most_one_instruction(self):
        graph = expand_to_nodes(diamond())
        assert all(len(b.instrs) <= 1 for b in graph.cfg)

    def test_expansion_validates(self):
        validate_cfg(expand_to_nodes(diamond()).cfg)

    def test_block_with_k_instrs_becomes_k_nodes(self):
        cfg = straight_line(["x = 1", "y = 2", "z = 3"])
        graph = expand_to_nodes(cfg)
        labels = [l for l in graph.cfg.labels if l.startswith("s0@")]
        assert labels == ["s0@0", "s0@1", "s0@2"]

    def test_empty_block_becomes_single_node(self):
        graph = expand_to_nodes(diamond())
        assert "right@0" in graph.cfg
        assert graph.cfg.block("right@0").is_empty

    def test_chain_wiring(self):
        cfg = straight_line(["x = 1", "y = 2"])
        graph = expand_to_nodes(cfg)
        assert graph.cfg.succs("s0@0") == ("s0@1",)

    def test_terminator_moved_to_last_node(self):
        graph = expand_to_nodes(diamond())
        # cond has one instruction, so cond@0 carries the branch.
        assert graph.cfg.succs("cond@0") == ("left@0", "right@0")

    def test_origin_mapping(self):
        cfg = straight_line(["x = 1", "y = 2"])
        graph = expand_to_nodes(cfg)
        assert graph.origin["s0@1"] == ("s0", 1)
        assert graph.entry_node["s0"] == "s0@0"
        assert graph.exit_node["s0"] == "s0@1"

    def test_node_label_helper(self):
        graph = expand_to_nodes(diamond())
        assert graph.node_label("left", 0) == "left@0"

    def test_semantics_preserved(self):
        cfg = diamond()
        expanded = expand_to_nodes(cfg).cfg
        for env in random_envs(cfg, 10, seed=3):
            assert run(cfg, env).env == run(expanded, env).env

    def test_branch_decisions_preserved(self):
        cfg = diamond()
        expanded = expand_to_nodes(cfg).cfg
        for env in random_envs(cfg, 10, seed=4):
            assert (
                run(cfg, env).decisions_taken
                == run(expanded, env).decisions_taken
            )
