"""The corpus: realistic mini-language programs through the whole stack.

Every ``tests/corpus/*.mini`` program is compiled, optimised with every
strategy, cleaned by the pass pipeline, and checked against the oracles
— semantic preservation for everything, per-path safety for the
classic-PRE family, and a profitability spot-check for the programs
written to contain redundancy.
"""

from pathlib import Path

import pytest

from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.pipeline import available_strategies, optimize
from repro.core.verify import verify_transformation
from repro.ir.validate import validate_cfg
from repro.lang import compile_program
from repro.passes import standard_pipeline

CORPUS = sorted((Path(__file__).resolve().parent / "corpus").glob("*.mini"))
CORPUS_IDS = [path.stem for path in CORPUS]

SAFE_STRATEGIES = ("lcm", "bcm", "krs-lcm", "krs-alcm", "krs-bcm", "mr", "gcse")

#: Programs written to contain redundancy LCM can remove.  (The
#: polynomial program deliberately has *no* cross-statement redundancy
#: — Horner and the naive form share no subexpression — and serves as
#: the "nothing to do" control.)
PROFITABLE = {
    "gcd_like",
    "matrix_walk",
    "branchy_min_max",
    "collatz_bounded",
    "fixed_point_filter",
    "early_exit_search",
}

#: Step budget generous enough for the statement-granular (krs-*)
#: results on the larger random inputs.
MAX_STEPS = 2_000_000


@pytest.fixture(params=CORPUS, ids=CORPUS_IDS)
def program(request):
    return request.param.stem, compile_program(request.param.read_text())


class TestCorpus:
    def test_compiles_and_validates(self, program):
        _, cfg = program
        validate_cfg(cfg)
        assert cfg.static_computation_count() > 0

    @pytest.mark.parametrize("strategy", [s.name for s in available_strategies()])
    def test_every_strategy_preserves_semantics(self, program, strategy):
        _, cfg = program
        result = optimize(cfg, strategy)
        report = check_equivalence(cfg, result.cfg, runs=15, max_steps=MAX_STEPS)
        assert report.equivalent, report.mismatches[:2]

    @pytest.mark.parametrize("strategy", SAFE_STRATEGIES)
    def test_safe_family_is_safe_per_path(self, program, strategy):
        _, cfg = program
        result = optimize(cfg, strategy)
        report = compare_per_path(cfg, result.cfg, max_branches=7)
        assert report.safe, report.safety_violations[:2]

    def test_lcm_profitable_where_expected(self, program):
        name, cfg = program
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg, max_branches=7)
        if name in PROFITABLE:
            assert report.improvements >= 1, name

    def test_full_pipeline(self, program):
        _, cfg = program
        result = standard_pipeline(cfg)
        validate_cfg(result.cfg)
        report = check_equivalence(
            cfg, result.cfg, runs=15, compare_decisions=False,
            max_steps=MAX_STEPS,
        )
        assert report.equivalent, report.mismatches[:2]

    def test_verify_api_agrees(self, program):
        _, cfg = program
        result = optimize(cfg, "lcm")
        assert verify_transformation(cfg, result.cfg).ok
