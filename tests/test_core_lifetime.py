"""Unit tests for live-range measurement (lifetime machinery)."""

from tests.helpers import straight_line

from repro.bench.figures import lifetime_ladder
from repro.core.lifetime import (
    blockwise_dominates,
    lifetime_points,
    measure_lifetimes,
)
from repro.core.pipeline import optimize
from repro.ir.builder import CFGBuilder


class TestLifetimePoints:
    def test_straightline_range(self):
        cfg = straight_line(["t = a + b", "x = c * 2", "y = t + 1"])
        points = lifetime_points(cfg, ["t"])
        # t live after its definition (boundary 1), across x's
        # definition (boundary 2), dead after its use.
        assert ("s0", 1) in points["t"]
        assert ("s0", 2) in points["t"]
        assert ("s0", 0) not in points["t"]
        assert ("s0", 3) not in points["t"]

    def test_cross_block_range(self):
        cfg = straight_line(["t = a + b"], ["q = 1"], ["y = t + 1"])
        points = lifetime_points(cfg, ["t"])
        assert ("s1", 0) in points["t"]
        assert ("s1", 1) in points["t"]
        assert ("s2", 0) in points["t"]

    def test_dead_variable_has_no_points(self):
        cfg = straight_line(["t = a + b"])
        assert lifetime_points(cfg, ["t"])["t"] == set()

    def test_terminator_use_keeps_alive(self):
        b = CFGBuilder()
        b.block("s", "p = a < b").branch("p", "t1", "t2")
        b.block("t1").to_exit()
        b.block("t2").to_exit()
        cfg = b.build()
        points = lifetime_points(cfg, ["p"])
        assert ("s", 1) in points["p"]  # live at the pre-terminator point


class TestMeasure:
    def test_report_totals(self):
        cfg = straight_line(["t = a + b", "u = c * 2", "x = t + u"])
        report = measure_lifetimes(cfg, ["t", "u"])
        assert report.live_span("t") == 2
        assert report.live_span("u") == 1
        assert report.total_live_points == 3
        assert report.max_pressure == 2

    def test_empty_temp_set(self):
        cfg = straight_line(["x = a + b"])
        report = measure_lifetimes(cfg, [])
        assert report.total_live_points == 0
        assert report.max_pressure == 0

    def test_describe(self):
        cfg = straight_line(["t = a + b", "x = t + 1"])
        text = measure_lifetimes(cfg, ["t"]).describe()
        assert "max pressure" in text


class TestProgramPressure:
    def test_peak_counts_all_variables(self):
        from repro.core.lifetime import program_pressure

        cfg = straight_line(["t = a + b", "u = c * 2", "x = t + u"])
        peak, average = program_pressure(cfg)
        # At the point before "x = t + u", {t, u} are live (a, b, c are
        # dead after their last uses).
        assert peak >= 2
        assert 0 < average <= peak

    def test_lcm_pressure_not_above_bcm(self):
        from repro.core.lifetime import program_pressure
        from repro.core.pipeline import optimize

        cfg = lifetime_ladder(6)
        lcm_peak, _ = program_pressure(optimize(cfg, "lcm").cfg)
        bcm_peak, _ = program_pressure(optimize(cfg, "bcm").cfg)
        assert lcm_peak <= bcm_peak

    def test_empty_program(self):
        from repro.core.lifetime import program_pressure
        from repro.ir.builder import CFGBuilder

        peak, average = program_pressure(CFGBuilder().build())
        assert peak == 0
        assert average == 0


class TestLadder:
    def test_lcm_shorter_than_bcm_and_grows_with_rungs(self):
        for rungs in (2, 6):
            cfg = lifetime_ladder(rungs)
            lcm = optimize(cfg, "lcm")
            bcm = optimize(cfg, "bcm")
            lcm_points = measure_lifetimes(lcm.cfg, lcm.temps).total_live_points
            bcm_points = measure_lifetimes(bcm.cfg, bcm.temps).total_live_points
            assert lcm_points < bcm_points
        # BCM's cost scales with ladder height; LCM's does not.
        short = lifetime_ladder(2)
        tall = lifetime_ladder(8)
        bcm_short = optimize(short, "bcm")
        bcm_tall = optimize(tall, "bcm")
        lcm_short = optimize(short, "lcm")
        lcm_tall = optimize(tall, "lcm")
        bcm_growth = (
            measure_lifetimes(bcm_tall.cfg, bcm_tall.temps).total_live_points
            - measure_lifetimes(bcm_short.cfg, bcm_short.temps).total_live_points
        )
        lcm_growth = (
            measure_lifetimes(lcm_tall.cfg, lcm_tall.temps).total_live_points
            - measure_lifetimes(lcm_short.cfg, lcm_short.temps).total_live_points
        )
        assert bcm_growth >= 6
        assert lcm_growth == 0

    def test_blockwise_domination_lcm_within_bcm(self):
        cfg = lifetime_ladder(5)
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        # The a+b temps have the same names in both results (same
        # universe), so the subset relation is directly checkable.
        violations = blockwise_dominates(
            lcm.cfg, bcm.cfg, lcm.temps & bcm.temps, cfg.labels
        )
        assert violations == []
