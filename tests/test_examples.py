"""The example scripts must run and show the behaviours they claim."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    output = io.StringIO()
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        with redirect_stdout(output):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return output.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = run_example("quickstart.py")
        assert "insert on edges [right->join]" in text
        assert "semantics preserved on 50 random inputs: True" in text
        assert "SAFE" in text

    def test_loop_invariant_motion(self):
        text = run_example("loop_invariant_motion.py")
        # The three-way story: do-while hoists, while refuses, LICM
        # speculates, while-plus-use hoists again.
        assert "do-while: LCM hoists" in text
        assert "UNSAFE" in text            # naive LICM on the while loop
        assert "1 evaluations of a*k (safe)" in text

    def test_redundancy_audit(self):
        text = run_example("redundancy_audit.py")
        assert "INSERT on edges : n3->n4, n5->n10, n5->n6" in text
        assert "DELETE in blocks: (none)" in text  # the isolated c + d

    def test_compiler_pipeline(self, tmp_path):
        dot_file = tmp_path / "out.dot"
        text = run_example("compiler_pipeline.py", argv=[f"--dot={dot_file}"])
        assert "strategy comparison on this program" in text
        assert "lcm" in text
        assert dot_file.read_text().startswith("digraph")

    def test_address_arithmetic(self):
        text = run_example("address_arithmetic.py")
        assert "acc (must match)" in text
        assert "verdict   : OK" in text
        # Strength reduction must have replaced something.
        assert "multiplications replaced" in text

    def test_generate_workload(self):
        text = run_example("generate_workload.py", argv=["7"])
        assert "# generated workload (seed 7)" in text
        assert "candidate expressions" in text
        assert "verdict   : OK" in text

    def test_dual_optimization(self):
        text = run_example("dual_optimization.py")
        assert "PRE + PDE" in text
        assert "2 paths improved, 0 regressed" in text
        # Each direction improves exactly its own arm.
        assert "PRE only   4               3" in text
        assert "PDE only   5               2" in text
