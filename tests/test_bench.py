"""Unit tests for the benchmark substrate (generators, figures, metrics,
table harness)."""

import pytest

from repro.bench.figures import FIGURES, figure_description, lifetime_ladder
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table
from repro.bench.metrics import (
    dynamic_evaluations,
    measure_strategy,
    solver_cost,
)
from repro.core.optimality import check_equivalence
from repro.core.pipeline import optimize
from repro.ir.validate import validate_cfg


class TestGenerators:
    def test_reproducible(self):
        assert str(random_cfg(42)) == str(random_cfg(42))

    def test_different_seeds_differ(self):
        assert str(random_cfg(1)) != str(random_cfg(2))

    def test_generated_graphs_validate(self):
        for seed in range(20):
            validate_cfg(random_cfg(seed))

    def test_programs_terminate(self):
        # The generator only emits bounded loops (repeat), so every
        # program halts under concrete execution.
        from repro.interp.machine import run
        from repro.interp.random_inputs import random_envs

        for seed in range(10):
            cfg = random_cfg(seed)
            for env in random_envs(cfg, 3, seed=seed):
                assert run(cfg, env, max_steps=100_000).reached_exit

    def test_config_scales_size(self):
        small = random_cfg(5, GeneratorConfig(statements=4))
        large = random_cfg(5, GeneratorConfig(statements=40))
        assert len(large) > len(small)

    def test_generated_programs_contain_redundancy_candidates(self):
        hits = 0
        for seed in range(10):
            cfg = random_cfg(seed)
            result = optimize(cfg, "lcm")
            if any(not p.is_identity for p in result.placements):
                hits += 1
        assert hits >= 5  # most seeds exercise PRE


class TestFigures:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_figures_validate(self, name):
        validate_cfg(FIGURES[name]())

    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_lcm_on_figures_preserves_semantics(self, name):
        cfg = FIGURES[name]()
        result = optimize(cfg, "lcm")
        assert check_equivalence(cfg, result.cfg, runs=20).equivalent

    def test_figure_description(self):
        assert "ladder" in figure_description("lifetime_ladder").lower() or \
            "chain" in figure_description("lifetime_ladder").lower()

    def test_ladder_rungs_validated(self):
        with pytest.raises(ValueError):
            lifetime_ladder(0)


class TestMetrics:
    def test_measure_strategy_fields(self):
        cfg = random_cfg(3)
        metrics = measure_strategy(cfg, "lcm", runs=5)
        assert metrics.strategy == "lcm"
        assert metrics.static_computations > 0
        assert metrics.runs_completed == 5
        assert metrics.bitvec_ops > 0
        assert metrics.blocks >= len(cfg)

    def test_dynamic_counts_comparable_across_strategies(self):
        cfg = random_cfg(7)
        lcm = measure_strategy(cfg, "lcm", runs=10, seed=1)
        none = measure_strategy(cfg, "none", runs=10, seed=1)
        assert lcm.dynamic_evaluations <= none.dynamic_evaluations

    def test_dynamic_evaluations_identity(self):
        cfg = random_cfg(9)
        total, completed = dynamic_evaluations(cfg, runs=4, seed=2)
        assert completed == 4
        assert total >= 0

    def test_solver_cost_counts_ops(self):
        assert solver_cost(random_cfg(1), "lcm").total > 0

    def test_mr_costs_more_than_lcm(self):
        # The headline efficiency claim, on a mid-sized graph.
        cfg = random_cfg(11, GeneratorConfig(statements=30))
        lcm_ops = solver_cost(cfg, "lcm").total
        mr_ops = solver_cost(cfg, "mr").total
        assert lcm_ops > 0 and mr_ops > 0


class TestOperationMix:
    def test_groups_by_operator(self):
        from tests.helpers import straight_line

        from repro.bench.metrics import operation_mix

        cfg = straight_line(["x = a + b", "y = a + c", "z = a * b"])
        mix = operation_mix(cfg, {"a": 1, "b": 2, "c": 3})
        assert mix == {"+": 2, "*": 1}

    def test_loop_scales_counts(self):
        from tests.helpers import do_while_invariant

        from repro.bench.metrics import operation_mix

        cfg = do_while_invariant()
        mix = operation_mix(cfg, {"n": 5})
        assert mix["+"] >= 10  # a+b and i+1 per iteration


class TestReportRegistry:
    def test_record_and_drain(self):
        from repro.bench.harness import Table, drain_reports, record_report

        table = Table(["k"], title="t")
        table.add_row(1)
        record_report("demo", table)
        record_report("plain", "text body")
        reports = drain_reports()
        assert len(reports) == 2
        assert "== demo ==" in reports[0]
        assert "text body" in reports[1]
        assert drain_reports() == []


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("x", 1)
        table.add_row("longer", 23)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_wrong_arity_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_mapping(self):
        table = Table(["a", "b"])
        table.add_mapping({"b": 2, "a": 1, "ignored": 9})
        assert "1" in table.render()

    def test_float_formatting(self):
        table = Table(["v"])
        table.add_row(1.23456)
        assert "1.235" in table.render()
