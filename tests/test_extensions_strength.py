"""Unit tests for induction-variable strength reduction."""

from repro.analysis.dominators import back_edges, natural_loop
from repro.core.optimality import check_equivalence
from repro.extensions.strength import (
    find_induction_variables,
    strength_reduce,
)
from repro.interp.machine import run
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr, Const, Var
from repro.ir.validate import validate_cfg
from repro.lang.lower import compile_program


def counting_loop():
    """for (i = 0; i < n; i++) { addr = i * 4; sum = sum + addr; }"""
    b = CFGBuilder()
    b.block("init", "i = 0", "sum = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "addr = i * 4", "sum = sum + addr", "i = i + 1").jump("head")
    b.block("out", "res = sum").to_exit()
    return b.build()


def loop_body(cfg):
    (back,) = [e for e in back_edges(cfg)]
    return natural_loop(cfg, back)


class TestInductionDetection:
    def test_basic_iv_found(self):
        cfg = counting_loop()
        ivs = find_induction_variables(cfg, loop_body(cfg))
        names = {iv.name for iv in ivs}
        assert "i" in names
        iv = next(v for v in ivs if v.name == "i")
        assert iv.op == "+"
        assert iv.step == Const(1)

    def test_accumulator_is_not_basic_iv_with_variant_step(self):
        cfg = counting_loop()
        ivs = find_induction_variables(cfg, loop_body(cfg))
        # sum = sum + addr steps by a loop-variant amount.
        assert "sum" not in {iv.name for iv in ivs}

    def test_multiply_defined_var_rejected(self):
        b = CFGBuilder()
        b.block("init", "i = 0").jump("head")
        b.block("head", "t = i < n").branch("t", "body", "out")
        b.block("body", "i = i + 1", "i = i + 2").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        assert find_induction_variables(cfg, loop_body(cfg)) == []

    def test_region_constant_step_accepted(self):
        b = CFGBuilder()
        b.block("init", "i = 0").jump("head")
        b.block("head", "t = i < n").branch("t", "body", "out")
        b.block("body", "i = i + stride").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        ivs = find_induction_variables(cfg, loop_body(cfg))
        assert ivs and ivs[0].step == Var("stride")

    def test_subtraction_iv(self):
        b = CFGBuilder()
        b.block("init", "i = n").jump("head")
        b.block("head", "t = i > 0").branch("t", "body", "out")
        b.block("body", "i = i - 1").jump("head")
        b.block("out").to_exit()
        cfg = b.build()
        ivs = find_induction_variables(cfg, loop_body(cfg))
        assert ivs and ivs[0].op == "-"


class TestTransformation:
    def test_multiplication_leaves_loop(self):
        cfg = counting_loop()
        result, report = strength_reduce(cfg)
        assert report.reduced
        validate_cfg(result.cfg)
        # The loop body no longer multiplies.
        body_exprs = [
            instr.expr
            for label in ("body",)
            for instr in result.cfg.block(label).instrs
        ]
        assert BinExpr("*", Var("i"), Const(4)) not in body_exprs

    def test_semantics_preserved(self):
        cfg = counting_loop()
        result, _ = strength_reduce(cfg)
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_dynamic_multiplications_drop(self):
        cfg = counting_loop()
        result, _ = strength_reduce(cfg)
        expr = BinExpr("*", Var("i"), Const(4))
        env = {"n": 10}
        before = run(cfg, env)
        after = run(result.cfg, env)
        assert before.count(expr) == 10
        # Only the preheader initialisation multiplies now.
        total_muls = sum(
            count
            for e, count in after.eval_counts.items()
            if isinstance(e, BinExpr) and e.op == "*"
        )
        assert total_muls <= 2  # t = i*4 (+ possibly d = step*c form)

    def test_variable_factor_and_step(self):
        cfg = compile_program(
            """
            i = 0;
            s = 0;
            while (i < n) {
                offset = i * width;
                s = s + offset;
                i = i + stride;
            }
            """
        )
        result, report = strength_reduce(cfg)
        assert report.reduced
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_no_loop_no_change(self):
        b = CFGBuilder()
        b.block("s", "x = i * 4").to_exit()
        cfg = b.build()
        result, report = strength_reduce(cfg)
        assert not report.reduced
        assert str(result.cfg) == str(cfg)

    def test_variant_factor_not_reduced(self):
        cfg = compile_program(
            """
            i = 0;
            while (i < n) {
                w = w + 1;
                x = i * w;     # w varies: not a candidate
                i = i + 1;
            }
            """
        )
        result, report = strength_reduce(cfg)
        assert not report.reduced

    def test_nested_loops(self):
        cfg = compile_program(
            """
            i = 0;
            s = 0;
            while (i < n) {
                j = 0;
                while (j < m) {
                    cell = j * 4;
                    s = s + cell;
                    j = j + 1;
                }
                row = i * 64;
                s = s + row;
                i = i + 1;
            }
            """
        )
        result, report = strength_reduce(cfg)
        assert len(report.reduced) >= 2
        assert check_equivalence(cfg, result.cfg, runs=20).equivalent

    def test_input_not_mutated(self):
        cfg = counting_loop()
        before = str(cfg)
        strength_reduce(cfg)
        assert str(cfg) == before


class TestDerivedIVs:
    def kernel(self):
        return compile_program(
            """
            acc = 0;
            col = 0;
            while (col < width) {
                idx = rowbase + col;    # derived IV over col
                addr = idx * 4;         # candidate on the derived IV
                acc = acc + addr;
                col = col + 1;
            }
            """
        )

    def test_derived_iv_detected(self):
        from repro.analysis.dominators import back_edges, natural_loop
        from repro.extensions.strength import (
            find_derived_variables,
            find_induction_variables,
        )

        cfg = self.kernel()
        (back,) = back_edges(cfg)
        body = natural_loop(cfg, back)
        basic = {iv.name for iv in find_induction_variables(cfg, body)}
        derived = find_derived_variables(cfg, body, basic)
        names = {d.name for d in derived}
        assert "idx" in names
        d = next(x for x in derived if x.name == "idx")
        assert d.base == "col"
        assert d.form == "i+rc"
        assert d.offset == Var("rowbase")

    def test_derived_candidate_reduced(self):
        cfg = self.kernel()
        result, report = strength_reduce(cfg)
        reduced_vars = {name for name, _ in report.reduced}
        assert "idx" in reduced_vars
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_multiplications_leave_the_loop(self):
        cfg = self.kernel()
        result, _ = strength_reduce(cfg)
        before = run(cfg, {"width": 12, "rowbase": 100})
        after = run(result.cfg, {"width": 12, "rowbase": 100})
        def muls(r):
            return sum(
                n for e, n in r.eval_counts.items()
                if isinstance(e, BinExpr) and e.op == "*"
            )
        assert muls(before) == 12
        # Only the one-time preheader initialisations remain: the two
        # shadows (col*4, idx*4) and the offset rowbase*4.
        assert muls(after) <= 3

    def test_rc_minus_i_form(self):
        cfg = compile_program(
            """
            acc = 0;
            i = 0;
            while (i < n) {
                back = limit - i;       # rc - i derived form
                off = back * 2;
                acc = acc + off;
                i = i + 1;
            }
            """
        )
        result, report = strength_reduce(cfg)
        assert any(name == "back" for name, _ in report.reduced)
        assert check_equivalence(cfg, result.cfg, runs=30).equivalent

    def test_stale_prewindow_read_preserved(self):
        # The occurrence executes *before* the derived IV's definition
        # within the iteration, reading the previous iteration's value
        # (or the arbitrary pre-loop value on entry).  The shadow must
        # track the variable's definitions, not the iteration count.
        cfg = compile_program(
            """
            acc = 0;
            i = 0;
            j = seed;
            while (i < n) {
                early = j * 3;          # reads the *old* j
                j = i + base;
                late = j * 3;           # reads the new j
                acc = acc + early;
                acc = acc + late;
                i = i + 1;
            }
            """
        )
        result, report = strength_reduce(cfg)
        assert check_equivalence(cfg, result.cfg, runs=40).equivalent

    def test_derived_over_variant_offset_rejected(self):
        cfg = compile_program(
            """
            i = 0;
            while (i < n) {
                w = w + 1;
                j = i + w;              # w varies: not a derived IV
                x = j * 4;
                i = i + 1;
            }
            """
        )
        _, report = strength_reduce(cfg)
        assert all(name != "j" for name, _ in report.reduced)

    def test_report_describe(self):
        cfg = counting_loop()
        _, report = strength_reduce(cfg)
        assert "multiplications replaced" in report.describe()
