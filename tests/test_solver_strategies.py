"""Round-robin and worklist solvers reach identical fixpoints.

Satellite of the solver-API consolidation: ``solve(cfg, problem,
strategy=...)`` must produce the same IN/OUT facts for both strategies
on a broad sample of generated programs (50 seeds, forward and backward
intersect problems), not just the handful of handwritten graphs the
unit tests cover.
"""

import pytest

from repro.analysis.local import compute_local_properties
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import STRATEGIES, solve

CONFIG = GeneratorConfig(statements=10, max_depth=2)


def _problems(cfg):
    local = compute_local_properties(cfg)
    width = local.universe.width
    yield DataflowProblem.forward_intersect(
        "availability", width, GenKillTransfer(gen=local.comp, keep=local.transp)
    )
    yield DataflowProblem.backward_intersect(
        "anticipability",
        width,
        GenKillTransfer(gen=local.antloc, keep=local.transp),
    )


def test_strategies_constant_names_all_solvers():
    assert set(STRATEGIES) == {"auto", "dense", "round-robin", "worklist"}


@pytest.mark.parametrize("seed", range(50))
def test_identical_fixpoints_on_random_cfgs(seed):
    cfg = random_cfg(seed, CONFIG)
    for problem in _problems(cfg):
        rr = solve(cfg, problem, strategy="round-robin")
        wl = solve(cfg, problem, strategy="worklist")
        dn = solve(cfg, problem, strategy="dense")
        assert rr.inof == wl.inof, f"IN facts diverge for {problem.name}"
        assert rr.outof == wl.outof, f"OUT facts diverge for {problem.name}"
        assert rr.inof == dn.inof, f"dense IN facts diverge for {problem.name}"
        assert rr.outof == dn.outof, f"dense OUT facts diverge for {problem.name}"
        # Dense mirrors the round-robin sweep structure node for node.
        assert rr.stats.sweeps == dn.stats.sweeps
        assert rr.stats.node_visits == dn.stats.node_visits
