"""Unit tests for the fluent CFG builder and the edge-list constructor."""

import pytest

from repro.ir.builder import CFGBuilder, cfg_from_edges, parse_assign
from repro.ir.cfg import CFGError
from repro.ir.expr import BinExpr, Const, Var
from repro.ir.instr import CondBranch
from repro.ir.validate import validate_cfg


class TestParseAssign:
    def test_simple(self):
        instr = parse_assign("x = a + b")
        assert instr.target == "x"
        assert instr.expr == BinExpr("+", Var("a"), Var("b"))

    def test_comparison_rhs_not_split_at_eq(self):
        instr = parse_assign("p = a == b")
        assert instr.expr == BinExpr("==", Var("a"), Var("b"))

    def test_le_rhs(self):
        assert parse_assign("p = a <= b").expr == BinExpr("<=", Var("a"), Var("b"))

    def test_missing_equals_rejected(self):
        with pytest.raises(CFGError):
            parse_assign("x + y")

    def test_bad_target_rejected(self):
        with pytest.raises(CFGError):
            parse_assign("2x = a + b")


class TestCFGBuilder:
    def test_entry_wired_to_first_block(self):
        b = CFGBuilder()
        b.block("only", "x = 1").to_exit()
        cfg = b.build()
        assert cfg.succs(cfg.entry) == ("only",)

    def test_explicit_entry_target(self):
        b = CFGBuilder()
        b.block("first", "x = 1").jump("second")
        b.block("second").to_exit()
        b.entry_to("second")
        cfg = b.build(validate=False)
        assert cfg.succs(cfg.entry) == ("second",)

    def test_branch_terminator(self):
        b = CFGBuilder()
        b.block("c").branch("p", "t", "f")
        b.block("t").to_exit()
        b.block("f").to_exit()
        cfg = b.build()
        term = cfg.block("c").terminator
        assert isinstance(term, CondBranch)
        assert term.cond == Var("p")

    def test_branch_on_constant(self):
        b = CFGBuilder()
        b.block("c").branch("1", "t", "f")
        b.block("t").to_exit()
        b.block("f").to_exit()
        term = b.build().block("c").terminator
        assert term.cond == Const(1)

    def test_build_validates(self):
        b = CFGBuilder()
        b.block("dangling", "x = 1").jump("nowhere")
        with pytest.raises(Exception):
            b.build()

    def test_empty_program(self):
        cfg = CFGBuilder().build()
        assert cfg.succs(cfg.entry) == (cfg.exit,)

    def test_add_chaining(self):
        b = CFGBuilder()
        b.block("s").add("x = 1").add("y = x + 1").to_exit()
        cfg = b.build()
        assert len(cfg.block("s").instrs) == 2

    def test_weight_passthrough(self):
        b = CFGBuilder()
        b.block("s", "x = 1").to_exit()
        b.weight("s", "exit", 5)
        assert b.build().weight(("s", "exit")) == 5


class TestCfgFromEdges:
    def test_shape_only_graph(self):
        cfg = cfg_from_edges(
            [("entry", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "exit")]
        )
        validate_cfg(cfg)
        assert cfg.succs("a") == ("b", "c")
        assert isinstance(cfg.block("a").terminator, CondBranch)

    def test_instruction_map(self):
        cfg = cfg_from_edges(
            [("entry", "a"), ("a", "exit")], instrs={"a": ["x = p + q"]}
        )
        assert str(cfg.block("a").instrs[0]) == "x = p + q"

    def test_three_successors_rejected(self):
        with pytest.raises(CFGError):
            cfg_from_edges(
                [("entry", "a"), ("a", "b"), ("a", "c"), ("a", "d"),
                 ("b", "exit"), ("c", "exit"), ("d", "exit")]
            )
