"""Unit tests for the CFG container and its graph surgery."""

import pytest

from tests.helpers import diamond, straight_line

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG, CFGError
from repro.ir.instr import Halt, Jump


class TestBlockManagement:
    def test_duplicate_label_rejected(self):
        cfg = CFG()
        cfg.new_block("b")
        with pytest.raises(CFGError):
            cfg.new_block("b")

    def test_missing_block_lookup(self):
        with pytest.raises(CFGError):
            CFG().block("ghost")

    def test_contains_len_iter(self):
        cfg = diamond()
        assert "join" in cfg
        assert "ghost" not in cfg
        assert len(cfg) == 6  # entry, exit, cond, left, right, join
        assert {b.label for b in cfg} == set(cfg.labels)

    def test_cannot_remove_entry_or_exit(self):
        cfg = diamond()
        with pytest.raises(CFGError):
            cfg.remove_block(cfg.entry)
        with pytest.raises(CFGError):
            cfg.remove_block(cfg.exit)

    def test_fresh_label_avoids_collisions(self):
        cfg = diamond()
        assert cfg.fresh_label("new") == "new"
        first = cfg.fresh_label("join")
        assert first == "join.1"


class TestEdges:
    def test_succs_in_branch_order(self):
        cfg = diamond()
        assert cfg.succs("cond") == ("left", "right")

    def test_preds_deterministic(self):
        cfg = diamond()
        assert cfg.preds("join") == ["left", "right"]

    def test_edges_listing(self):
        cfg = straight_line(["x = 1"], ["y = 2"])
        assert ("s0", "s1") in cfg.edges()
        assert ("entry", "s0") in cfg.edges()
        assert ("s1", "exit") in cfg.edges()

    def test_has_edge(self):
        cfg = diamond()
        assert cfg.has_edge("cond", "left")
        assert not cfg.has_edge("left", "right")

    def test_dangling_edge_detected_on_pred_query(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("entry", [], Jump("ghost")))
        cfg.add_block(BasicBlock("exit", [], Halt()))
        with pytest.raises(CFGError):
            cfg.preds("exit")


class TestWeights:
    def test_default_weight(self):
        cfg = diamond()
        assert cfg.weight(("cond", "left")) == 1

    def test_set_weight(self):
        cfg = diamond()
        cfg.set_weight(("cond", "left"), 7)
        assert cfg.weight(("cond", "left")) == 7

    def test_zero_weight_rejected(self):
        cfg = diamond()
        with pytest.raises(CFGError):
            cfg.set_weight(("cond", "left"), 0)


class TestSurgery:
    def test_retarget_jump(self):
        cfg = straight_line(["x = 1"], ["y = 2"])
        cfg.new_block("detour").terminator = Jump("s1")
        cfg.retarget("s0", "s1", "detour")
        assert cfg.succs("s0") == ("detour",)
        assert "s0" not in cfg.preds("s1")

    def test_retarget_branch_single_arm(self):
        cfg = diamond()
        cfg.new_block("detour").terminator = Jump("join")
        cfg.retarget("cond", "left", "detour")
        assert cfg.succs("cond") == ("detour", "right")

    def test_retarget_missing_edge_rejected(self):
        cfg = diamond()
        with pytest.raises(CFGError):
            cfg.retarget("left", "right", "join")

    def test_split_edge_inserts_pass_through(self):
        cfg = diamond()
        new = cfg.split_edge("right", "join")
        assert cfg.succs("right") == (new.label,)
        assert cfg.succs(new.label) == ("join",)
        assert new.is_empty

    def test_split_edge_moves_weight(self):
        cfg = diamond()
        cfg.set_weight(("right", "join"), 9)
        new = cfg.split_edge("right", "join")
        assert cfg.weight(("right", new.label)) == 9
        assert cfg.weight((new.label, "join")) == 9

    def test_split_missing_edge_rejected(self):
        cfg = diamond()
        with pytest.raises(CFGError):
            cfg.split_edge("left", "right")


class TestWholeGraph:
    def test_variables(self):
        cfg = diamond()
        assert cfg.variables() == {"a", "b", "p", "x", "y"}

    def test_instructions_iteration(self):
        cfg = diamond()
        listed = [(label, i, str(instr)) for label, i, instr in cfg.instructions()]
        assert ("left", 0, "x = a + b") in listed

    def test_static_computation_count(self):
        cfg = diamond()
        # p = a < b, x = a + b, y = a + b
        assert cfg.static_computation_count() == 3

    def test_copy_is_deep_for_blocks(self):
        cfg = diamond()
        clone = cfg.copy()
        clone.block("left").instrs.clear()
        assert len(cfg.block("left").instrs) == 1

    def test_copy_preserves_weights(self):
        cfg = diamond()
        cfg.set_weight(("cond", "left"), 3)
        assert cfg.copy().weight(("cond", "left")) == 3
