"""Unit tests for critical-edge detection and splitting."""

from tests.helpers import diamond

from repro.ir.builder import CFGBuilder
from repro.ir.edgesplit import critical_edges, split_critical_edges
from repro.ir.validate import validate_cfg
from repro.interp.machine import run


def graph_with_critical_edge():
    """cond branches to (shared, other); shared also reachable from pre.

    The edge cond->shared is critical: cond has two successors, shared
    has two predecessors.
    """
    b = CFGBuilder()
    b.block("cond").branch("p", "shared", "other")
    b.block("other", "x = 1").jump("shared")
    b.block("shared", "y = 2").to_exit()
    return b.build()


class TestCriticalEdges:
    def test_diamond_has_no_critical_edges(self):
        assert critical_edges(diamond()) == []

    def test_detection(self):
        cfg = graph_with_critical_edge()
        assert critical_edges(cfg) == [("cond", "shared")]

    def test_split_removes_criticality(self):
        cfg = graph_with_critical_edge()
        mapping = split_critical_edges(cfg)
        assert ("cond", "shared") in mapping
        assert critical_edges(cfg) == []
        validate_cfg(cfg)

    def test_split_block_is_pass_through(self):
        cfg = graph_with_critical_edge()
        mapping = split_critical_edges(cfg)
        label = mapping[("cond", "shared")]
        block = cfg.block(label)
        assert block.is_empty
        assert cfg.succs(label) == ("shared",)

    def test_split_preserves_semantics(self):
        cfg = graph_with_critical_edge()
        before = run(cfg, {"p": 1})
        split_critical_edges(cfg)
        after = run(cfg, {"p": 1})
        assert before.env == after.env

    def test_idempotent(self):
        cfg = graph_with_critical_edge()
        split_critical_edges(cfg)
        assert split_critical_edges(cfg) == {}

    def test_loop_back_edge_split(self):
        b = CFGBuilder()
        b.block("head", "i = i + 1", "t = i < n").branch("t", "head", "out")
        b.block("out").to_exit()
        cfg = b.build()
        # head -> head is critical (head has 2 succs and 2 preds).
        assert ("head", "head") in critical_edges(cfg)
        split_critical_edges(cfg)
        assert critical_edges(cfg) == []
        validate_cfg(cfg)
