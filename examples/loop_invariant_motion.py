#!/usr/bin/env python3
"""Loop-invariant code motion — safely — via Lazy Code Motion.

Classic PRE subsumes loop-invariant code motion *without speculation*:
an invariant is hoisted exactly when executing it at the loop entry is
down-safe.  This example contrasts three programs:

1. a do-while loop (body always runs): LCM hoists the invariant;
2. a while loop (body may not run): LCM correctly refuses to hoist,
   while the naive LICM baseline speculates and pays on the zero-trip
   path;
3. the same while loop whose result is *also* needed after the loop:
   now hoisting is down-safe again and LCM does it.

Run:  python examples/loop_invariant_motion.py
"""

from repro import optimize, run_program
from repro.core.optimality import compare_per_path
from repro.ir.expr import BinExpr, Var
from repro.lang import compile_program

INVARIANT = BinExpr("*", Var("a"), Var("k"))

DO_WHILE = """
s = 0;
i = 0;
do {
    step = a * k;       # invariant: a, k never change
    s = s + step;
    i = i + 1;
    more = i < n;
} while (more);
"""

WHILE_ONLY = """
s = 0;
i = 0;
while (i < n) {
    step = a * k;       # invariant, but the body may never run
    s = s + step;
    i = i + 1;
}
"""

WHILE_PLUS_USE = WHILE_ONLY + """
final = a * k;          # needed afterwards on every path
"""


def report(title, source, strategies=("lcm",)):
    cfg = compile_program(source)
    print(f"--- {title} " + "-" * max(0, 50 - len(title)))
    for trip_count in (0, 4):
        if trip_count == 0 and "do {" in source:
            continue  # a do-while body always runs at least once
        baseline = run_program(cfg, {"a": 3, "k": 7, "n": trip_count})
        print(f"  original, n={trip_count}: "
              f"{baseline.count(INVARIANT)} evaluations of a*k")
        for strategy in strategies:
            optimized = optimize(cfg, strategy)
            after = run_program(optimized.cfg, {"a": 3, "k": 7, "n": trip_count})
            safety = compare_per_path(cfg, optimized.cfg, max_branches=6)
            print(
                f"  {strategy:4s},     n={trip_count}: "
                f"{after.count(INVARIANT)} evaluations of a*k "
                f"({'safe' if safety.safe else 'UNSAFE: pays on paths that never needed it'})"
            )
    print()


def main():
    report("do-while: LCM hoists", DO_WHILE)
    report("while: LCM refuses, naive LICM speculates", WHILE_ONLY,
           strategies=("lcm", "licm"))
    report("while + later use: hoisting is down-safe again", WHILE_PLUS_USE)


if __name__ == "__main__":
    main()
