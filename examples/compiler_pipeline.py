#!/usr/bin/env python3
"""A complete mini compiler pipeline using the public API.

Source text -> parse -> lower to CFG -> local CSE -> Lazy Code Motion
-> execute, with a strategy comparison table and an optional Graphviz
dump of the optimised graph.

Run:  python examples/compiler_pipeline.py [--dot out.dot]
"""

import argparse

from repro import available_strategies, optimize, run_program
from repro.bench.harness import Table
from repro.bench.metrics import measure_strategy
from repro.ir.dot import cfg_to_dot
from repro.lang import compile_program

SOURCE = """
# A tiny image-kernel-flavoured workload: the address expression
# base + off is partially redundant across the branch, and width * 4
# is invariant in the loop.
off = i * 4;
if (edge) {
    left = base + off;
    acc = left * 2;
} else {
    acc = 0;
}
p = base + off;        # redundant when the then-branch ran
row = 0;
do {
    stride = width * 4;    # loop-invariant
    row = row + stride;
    n = n - 1;
    more = n > 0;
} while (more);
out = row + acc;
final = width * 4;         # fully redundant after the loop
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dot", help="write the optimised CFG as Graphviz")
    args = parser.parse_args()

    cfg = compile_program(SOURCE)
    inputs = {"i": 3, "edge": 1, "base": 100, "width": 8, "n": 5}

    before = run_program(cfg, inputs)
    result = optimize(cfg, "lcm")
    after = run_program(result.cfg, inputs)

    print("source compiled to", len(cfg), "blocks")
    print("plan:")
    for line in result.describe().splitlines():
        print("  ", line)
    print()
    print(f"dynamic expression evaluations: {before.total_evaluations} -> "
          f"{after.total_evaluations}")
    print(f"out = {after.env['out']} (unchanged: {after.env['out'] == before.env['out']})")
    print()

    table = Table(
        ["strategy", "static", "dynamic", "temps", "live pts", "pressure", "bv ops"],
        title="strategy comparison on this program",
    )
    for strategy in ("none", "gcse", "mr", "bcm", "lcm"):
        metrics = measure_strategy(cfg, strategy, runs=10)
        row = metrics.as_row()
        table.add_row(*(row[h] for h in
                        ("strategy", "static", "dynamic", "temps",
                         "live pts", "pressure", "bv ops")))
    print(table.render())

    if args.dot:
        highlight = {
            block.label
            for block in result.cfg
            if any(instr.target in result.temps for instr in block.instrs)
        }
        with open(args.dot, "w") as handle:
            handle.write(cfg_to_dot(result.cfg, highlight_blocks=highlight))
        print(f"\nwrote {args.dot} (insertion blocks highlighted)")

    print("\navailable strategies:")
    for strategy in available_strategies():
        print(f"  {strategy.name:10s} {strategy.description}")


if __name__ == "__main__":
    main()
