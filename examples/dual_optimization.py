#!/usr/bin/env python3
"""PRE and its dual, composed: hoist redundancy up, sink deadness down.

One graph carries both phenomena the Knoop/Rüthing/Steffen programme
attacks: a partially redundant computation (LCM's case, PLDI'92) and a
partially dead assignment (PDE's case, PLDI'94).  Each direction fixes
its own family of paths; composed, every path improves.

Run:  python examples/dual_optimization.py
"""

from repro import CFGBuilder, optimize
from repro.bench.harness import Table
from repro.core.optimality import compare_per_path
from repro.extensions import sink_assignments


def build():
    b = CFGBuilder()
    # x = c*d is partially dead (the right arm overwrites it);
    # a+b at the join is partially redundant (the left arm computed it).
    b.block("top", "x = c * d").branch("p", "left", "right")
    b.block("left", "u = a + b", "y = x + u").jump("join")
    b.block("right", "x = 5").jump("join")
    b.block("join", "v = a + b", "out = v + x").to_exit()
    return b.build()


def main():
    cfg = build()
    print("INPUT -----------------------------------------------------")
    print(cfg)
    print()

    pre = optimize(cfg, "lcm")
    pde, sink_report = sink_assignments(cfg)
    composed, _ = sink_assignments(pre.cfg)

    print("PRE plan   :", "; ".join(
        p.describe() for p in pre.placements if not p.is_identity))
    print("PDE actions:", sink_report.describe().replace("\n", "; "))
    print()

    table = Table(
        ["variant", "p=1 path evals", "p=0 path evals"],
        title="evaluations per path (True arm / False arm)",
    )
    for name, graph in (
        ("original", cfg),
        ("PRE only", pre.cfg),
        ("PDE only", pde.cfg),
        ("PRE + PDE", composed.cfg),
    ):
        from repro.core.optimality import replay

        true_path = replay(graph, (True,)).total
        false_path = replay(graph, (False,)).total
        table.add_row(name, true_path, false_path)
    print(table.render())

    print()
    report = compare_per_path(cfg, composed.cfg)
    print("composed vs original:", report.describe())
    print()
    print("COMPOSED --------------------------------------------------")
    print(composed.cfg)


if __name__ == "__main__":
    main()
