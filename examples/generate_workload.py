#!/usr/bin/env python3
"""Generate a random PRE workload and audit what LCM does to it.

Shows the workload-generation substrate end to end: a seeded random
program is produced as readable source text (via the unparser), lowered,
and pushed through the full optimisation report.

Run:  python examples/generate_workload.py [seed]
"""

import sys

from repro.bench.generators import GeneratorConfig, random_program
from repro.core.report import optimization_report
from repro.lang import lower_program, unparse


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    program = random_program(seed, GeneratorConfig(statements=10))

    source = unparse(program)
    print(f"# generated workload (seed {seed})")
    print(source)

    cfg = lower_program(program)
    print(optimization_report(cfg, title=f"seed {seed}"))


if __name__ == "__main__":
    main()
