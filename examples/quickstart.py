#!/usr/bin/env python3
"""Quickstart: eliminate a partial redundancy with Lazy Code Motion.

Builds the textbook diamond — ``a + b`` computed on one branch arm and
recomputed at the join — runs LCM, and shows what moved where.

Run:  python examples/quickstart.py
"""

from repro import CFGBuilder, optimize
from repro.core.optimality import check_equivalence, compare_per_path


def build_program():
    """cond -> (left computes a+b | right doesn't) -> join recomputes."""
    b = CFGBuilder()
    b.block("cond", "p = a < b").branch("p", "left", "right")
    b.block("left", "x = a + b").jump("join")
    b.block("right", "z = a - b").jump("join")
    b.block("join", "y = a + b").to_exit()
    return b.build()


def main():
    cfg = build_program()
    print("BEFORE ----------------------------------------------------")
    print(cfg)

    result = optimize(cfg, "lcm")

    print()
    print("PLAN ------------------------------------------------------")
    print(result.describe())
    print(f"copy blocks (generators that feed the temp): {sorted(result.copy_blocks)}")

    print()
    print("AFTER -----------------------------------------------------")
    print(result.cfg)

    # The library can check its own guarantees:
    equivalence = check_equivalence(cfg, result.cfg, runs=50)
    paths = compare_per_path(cfg, result.cfg)
    print()
    print("CHECKS ----------------------------------------------------")
    print(f"semantics preserved on 50 random inputs: {equivalence.equivalent}")
    print(f"per-path report: {paths.describe()}")


if __name__ == "__main__":
    main()
