#!/usr/bin/env python3
"""Redundancy audit: see the LCM analyses block by block.

A small "compiler explainer": for a given program and expression, print
the control flow graph annotated with the facts each of the four
edge-based analyses derived — anticipatability (down-safety),
availability (up-safety), the LATER frontier, and the resulting
INSERT/DELETE decisions.  This is the view the paper's figures give of
its running example.

Run:  python examples/redundancy_audit.py
"""

from repro import analyze_lcm, pretty_cfg
from repro.bench.figures import running_example
from repro.ir.expr import BinExpr, Var


def audit(cfg, expr):
    analysis = analyze_lcm(cfg)
    universe = analysis.universe
    idx = universe.index_of(expr)

    def annotate(label):
        flags = []
        for name, table in (
            ("ANTLOC", analysis.local.antloc),
            ("TRANSP", analysis.local.transp),
            ("ANTIN", analysis.antin),
            ("AVIN", analysis.avin),
            ("LATERIN", analysis.laterin),
            ("DELETE", analysis.delete),
        ):
            if idx in table[label]:
                flags.append(name)
        yield f"{expr}: " + (", ".join(flags) if flags else "(nothing)")

    print(pretty_cfg(cfg, annotate))
    print()
    print(f"decisions for {expr}:")
    inserts = sorted(
        f"{m}->{n}" for (m, n), vec in analysis.insert.items() if idx in vec
    )
    deletes = sorted(
        label for label, vec in analysis.delete.items() if idx in vec
    )
    print(f"  INSERT on edges : {', '.join(inserts) or '(none)'}")
    print(f"  DELETE in blocks: {', '.join(deletes) or '(none)'}")


def main():
    cfg = running_example()
    print("Auditing the reconstructed running example for a + b")
    print("=" * 60)
    audit(cfg, BinExpr("+", Var("a"), Var("b")))
    print()
    print("And for the isolated c + d (PRE must not touch it)")
    print("=" * 60)
    audit(cfg, BinExpr("+", Var("c"), Var("d")))


if __name__ == "__main__":
    main()
