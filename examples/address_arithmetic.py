#!/usr/bin/env python3
"""Address arithmetic in a nested loop: PRE + strength reduction.

The motivating workload for classic PRE papers: a doubly nested loop
whose body is dominated by flattened-index computations
(``row * width``, ``... * 4``).  This example compiles the kernel,
applies Lazy Code Motion, then induction-variable strength reduction,
then the cleanup pipeline, and reports the dynamic operation mix after
each stage.

Run:  python examples/address_arithmetic.py
"""

from repro import optimize, run_program
from repro.bench.harness import Table
from repro.core.verify import verify_transformation
from repro.extensions.strength import strength_reduce
from repro.ir.expr import BinExpr
from repro.lang import compile_program

KERNEL = """
# acc += M[row][col] for a width x height matrix laid out flat;
# element "loads" are simulated by arithmetic on the address.
acc = 0;
row = 0;
while (row < height) {
    rowbase = row * width;       # strength-reduction candidate
    col = 0;
    while (col < width) {
        idx = rowbase + col;
        addr = idx * 4;          # strength-reduction candidate
        elem = base + addr;      # partially redundant pieces
        acc = acc + elem;
        addr2 = idx * 4;         # fully redundant (PRE removes it)
        check = base + addr2;
        acc = acc + check;
        col = col + 1;
    }
    row = row + 1;
}
"""

INPUTS = {"height": 6, "width": 8, "base": 1000}


MUL_COST = 4  # a multiply costs ~4x an add on the modelled machine


def op_mix(cfg):
    result = run_program(cfg, INPUTS)
    assert result.reached_exit
    muls = sum(
        n for e, n in result.eval_counts.items()
        if isinstance(e, BinExpr) and e.op == "*"
    )
    cost = MUL_COST * muls + (result.total_evaluations - muls)
    return result.total_evaluations, muls, cost, result.env["acc"]


def main():
    cfg = compile_program(KERNEL)

    stages = [("original", cfg)]

    lcm = optimize(cfg, "lcm")
    stages.append(("after LCM", lcm.cfg))

    reduced, report = strength_reduce(lcm.cfg)
    stages.append(("after LCM + strength reduction", reduced.cfg))

    table = Table(
        ["stage", "total evals", "muls", f"cost (mul={MUL_COST})",
         "acc (must match)"],
        title=f"nested address kernel, {INPUTS['height']}x{INPUTS['width']}",
    )
    reference = None
    for name, graph in stages:
        total, muls, cost, acc = op_mix(graph)
        reference = acc if reference is None else reference
        assert acc == reference, "semantics diverged!"
        table.add_row(name, total, muls, cost, acc)
    print(table.render())

    print()
    print("strength reduction decisions:")
    for line in report.describe().splitlines():
        print("  ", line)

    print()
    verdict = verify_transformation(cfg, lcm.cfg, expect_profitable=True)
    print("LCM verification:")
    for line in verdict.describe().splitlines():
        print("  ", line)


if __name__ == "__main__":
    main()
